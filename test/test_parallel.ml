(* Tests for the deterministic parallel layer: the Dtr_util.Pool domain
   pool itself (ordering, exception selection, reuse, lifecycle), the
   Multistart driver's jobs-invariance, the parallel failure sweep and
   Registry.run_all against their sequential runs, and the atomic /
   domain-local evaluation counters that keep per-report numbers
   scheduling-independent. *)

module Prng = Dtr_util.Prng
module Pool = Dtr_util.Pool
module Matrix = Dtr_traffic.Matrix
module Lexico = Dtr_cost.Lexico
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Failure_sweep = Dtr_routing.Failure_sweep
module Search_config = Dtr_core.Search_config
module Problem = Dtr_core.Problem
module Scan = Dtr_core.Scan
module Str_search = Dtr_core.Str_search
module Dtr_search = Dtr_core.Dtr_search
module Vmemo = Dtr_util.Vmemo
module Anneal_search = Dtr_core.Anneal_search
module Multistart = Dtr_core.Multistart
module Scenario = Dtr_experiments.Scenario
module Classic = Dtr_topology.Classic

let tiny_config =
  {
    Search_config.quick with
    Search_config.n_iters = 15;
    k_iters = 20;
    diversify_after = 8;
  }

let ring_problem ?(model = Objective.Load) () =
  let g = Classic.ring ~capacity:1.0 ~delay:2.0 6 in
  let th = Matrix.create 6 and tl = Matrix.create 6 in
  Matrix.set th 0 3 0.3;
  Matrix.set th 1 4 0.2;
  Matrix.set tl 0 3 0.4;
  Matrix.set tl 2 5 0.5;
  Matrix.set tl 4 1 0.3;
  Problem.create ~graph:g ~th ~tl ~model

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_ordering () =
  (* Unequal task sizes perturb completion order; results must still
     land by task index. *)
  let f i =
    let acc = ref 0 in
    for k = 0 to (23 - i) * 5000 do
      acc := !acc + k
    done;
    ignore !acc;
    i * i
  in
  List.iter
    (fun jobs ->
      let r = Pool.run ~jobs 24 ~f in
      Alcotest.(check int) "length" 24 (Array.length r);
      Array.iteri
        (fun i v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * i) v)
        r)
    [ 1; 2; 4 ]

let test_pool_empty_and_single () =
  Pool.with_pool ~jobs:3 @@ fun p ->
  Alcotest.(check int) "jobs" 3 (Pool.jobs p);
  Alcotest.(check int) "empty batch" 0 (Array.length (Pool.map p 0 ~f:(fun _ -> assert false)));
  Alcotest.(check (array int)) "singleton" [| 7 |] (Pool.map p 1 ~f:(fun _ -> 7))

exception Task_failed of int

let test_pool_exception_lowest_index () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs @@ fun p ->
      (try
         ignore
           (Pool.map p 16 ~f:(fun i ->
                if i = 5 || i = 12 then raise (Task_failed i) else i));
         Alcotest.fail "expected Task_failed"
       with Task_failed i ->
         Alcotest.(check int) "lowest failing index wins" 5 i);
      (* The pool survives a failing batch. *)
      let r = Pool.map p 4 ~f:(fun i -> i + 1) in
      Alcotest.(check (array int)) "reusable after failure" [| 1; 2; 3; 4 |] r)
    [ 1; 3 ]

let test_pool_reuse () =
  Pool.with_pool ~jobs:2 @@ fun p ->
  for round = 1 to 5 do
    let r = Pool.map p 8 ~f:(fun i -> (round * 100) + i) in
    Array.iteri
      (fun i v -> Alcotest.(check int) "round result" ((round * 100) + i) v)
      r
  done

let test_pool_lifecycle () =
  Alcotest.check_raises "jobs must be positive"
    (Invalid_argument "Pool.create: jobs must be >= 1") (fun () ->
      ignore (Pool.create ~jobs:0));
  let p = Pool.create ~jobs:2 in
  Pool.shutdown p;
  Pool.shutdown p;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map p 3 ~f:(fun i -> i)))

(* ------------------------------------------------------------------ *)
(* Multistart determinism *)

let check_same_report (a : Multistart.report) (b : Multistart.report) =
  Alcotest.(check int) "same winner index" a.Multistart.best_index
    b.Multistart.best_index;
  Alcotest.(check int) "same objective (exact)" 0
    (Lexico.compare a.Multistart.objective b.Multistart.objective);
  Alcotest.(check (array int)) "same wh" a.Multistart.best.Problem.wh
    b.Multistart.best.Problem.wh;
  Alcotest.(check (array int)) "same wl" a.Multistart.best.Problem.wl
    b.Multistart.best.Problem.wl;
  Array.iteri
    (fun i (r : Multistart.restart) ->
      Alcotest.(check int)
        (Printf.sprintf "restart %d objective" i)
        0
        (Lexico.compare r.Multistart.objective
           b.Multistart.restarts.(i).Multistart.objective))
    a.Multistart.restarts

let test_multistart_jobs_invariance () =
  let p = ring_problem () in
  List.iter
    (fun algo ->
      let run jobs =
        Multistart.run ~jobs ~restarts:4 ~algo (Prng.create 11) tiny_config p
      in
      let seq = run 1 in
      let par = run 4 in
      check_same_report seq par)
    [ Multistart.Str; Multistart.Dtr ]

let test_multistart_picks_best () =
  let p = ring_problem () in
  let r =
    Multistart.run ~jobs:2 ~restarts:4 ~algo:Multistart.Dtr (Prng.create 3)
      tiny_config p
  in
  Alcotest.(check int) "all restarts reported" 4 (Array.length r.Multistart.restarts);
  Array.iter
    (fun (restart : Multistart.restart) ->
      Alcotest.(check bool) "winner is minimal" true
        (Lexico.compare r.Multistart.objective restart.Multistart.objective <= 0))
    r.Multistart.restarts;
  Alcotest.check_raises "restarts must be positive"
    (Invalid_argument "Multistart.run: restarts must be >= 1") (fun () ->
      ignore
        (Multistart.run ~restarts:0 ~algo:Multistart.Str (Prng.create 1)
           tiny_config p))

(* ------------------------------------------------------------------ *)
(* Parallel failure sweep and experiment runner vs sequential *)

let test_failure_sweep_jobs_invariance () =
  let spec =
    {
      Scenario.topology = Scenario.Isp;
      fraction = 0.30;
      hp = Scenario.Random_density 0.10;
      seed = 5;
    }
  in
  let inst = Scenario.make spec in
  let rng = Prng.create 17 in
  let wh = Weights.random rng inst.Scenario.graph in
  let wl = Weights.random rng inst.Scenario.graph in
  let seq = Dtr_experiments.Failure.post_failure_costs inst ~wh ~wl in
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let par = Dtr_experiments.Failure.post_failure_costs ~pool inst ~wh ~wl in
  Alcotest.(check int) "same count" (Array.length seq) (Array.length par);
  Array.iter2
    (fun (a : Failure_sweep.outcome) (b : Failure_sweep.outcome) ->
      Alcotest.(check int) "same severed pairs" a.Failure_sweep.unreachable_pairs
        b.Failure_sweep.unreachable_pairs;
      Alcotest.(check int) "same cost (exact)" 0
        (Lexico.compare a.Failure_sweep.cost b.Failure_sweep.cost))
    seq par

let test_run_all_jobs_invariance () =
  (* fig1 is search-free, so the whole comparison stays cheap. *)
  let fig1 =
    match Dtr_experiments.Registry.find "fig1" with
    | Some e -> e
    | None -> Alcotest.fail "fig1 not registered"
  in
  let render results =
    List.concat_map
      (fun (e, tables) ->
        e.Dtr_experiments.Registry.name
        :: List.map Dtr_util.Table.to_string tables)
      results
  in
  let cfg = Search_config.quick in
  let seq =
    Dtr_experiments.Registry.run_all ~jobs:1 ~cfg ~seed:1 [ fig1; fig1 ]
  in
  let par =
    Dtr_experiments.Registry.run_all ~jobs:2 ~cfg ~seed:1 [ fig1; fig1 ]
  in
  Alcotest.(check (list string)) "identical rendering" (render seq) (render par)

(* ------------------------------------------------------------------ *)
(* Evaluation counters under concurrency *)

let test_counters_exact_across_domains () =
  let p = ring_problem () in
  let w = Weights.uniform p.Problem.graph 15 in
  let eval0 = Problem.evaluations () in
  let full0 = Problem.full_evaluations () in
  let n = 32 in
  ignore (Pool.run ~jobs:4 n ~f:(fun _ -> ignore (Problem.eval_str p ~w)));
  Alcotest.(check int) "global total is exact" n (Problem.evaluations () - eval0);
  Alcotest.(check int) "full total is exact" n
    (Problem.full_evaluations () - full0)

let test_report_evaluations_scheduling_independent () =
  (* Each task's report.evaluations comes from the domain-local
     counter, so running other searches concurrently on sibling domains
     must not leak into it. *)
  let p = ring_problem () in
  let counts jobs =
    Pool.run ~jobs 6 ~f:(fun i ->
        let r = Str_search.run (Prng.create (100 + i)) tiny_config p in
        r.Str_search.evaluations)
  in
  Alcotest.(check (array int)) "same per-report evals" (counts 1) (counts 3)

(* ------------------------------------------------------------------ *)
(* Scan engine: scan-jobs invariance and memoization accounting *)

let with_scan_jobs cfg scan_jobs = { cfg with Search_config.scan_jobs }

let test_str_scan_jobs_invariance () =
  List.iter
    (fun model ->
      let p = ring_problem ~model () in
      let run scan_jobs =
        Str_search.run (Prng.create 7) (with_scan_jobs tiny_config scan_jobs) p
      in
      let a = run 1 in
      let b = run 4 in
      Alcotest.(check int) "same objective (exact)" 0
        (Lexico.compare a.Str_search.objective b.Str_search.objective);
      Alcotest.(check (array int)) "same weights" a.Str_search.best.Problem.wh
        b.Str_search.best.Problem.wh;
      Alcotest.(check int) "same evaluations" a.Str_search.evaluations
        b.Str_search.evaluations;
      Alcotest.(check int) "same improvements" a.Str_search.improvements
        b.Str_search.improvements;
      Alcotest.(check int) "same memo hits" a.Str_search.memo_hits
        b.Str_search.memo_hits;
      Alcotest.(check int) "same memo misses" a.Str_search.memo_misses
        b.Str_search.memo_misses;
      Alcotest.(check int) "same archive size"
        (List.length a.Str_search.archive)
        (List.length b.Str_search.archive);
      List.iter2
        (fun (x : Str_search.archive_point) (y : Str_search.archive_point) ->
          Alcotest.(check bool) "same archive point" true
            (x.Str_search.phi_h = y.Str_search.phi_h
            && x.Str_search.phi_l = y.Str_search.phi_l
            && x.Str_search.w = y.Str_search.w))
        a.Str_search.archive b.Str_search.archive)
    [ Objective.Load; Objective.Sla Dtr_cost.Sla.default ]

let test_dtr_scan_jobs_invariance () =
  let p = ring_problem () in
  let run scan_jobs =
    Dtr_search.run (Prng.create 9) (with_scan_jobs tiny_config scan_jobs) p
  in
  let a = run 1 in
  let b = run 4 in
  Alcotest.(check int) "same objective (exact)" 0
    (Lexico.compare a.Dtr_search.objective b.Dtr_search.objective);
  Alcotest.(check (array int)) "same wh" a.Dtr_search.best.Problem.wh
    b.Dtr_search.best.Problem.wh;
  Alcotest.(check (array int)) "same wl" a.Dtr_search.best.Problem.wl
    b.Dtr_search.best.Problem.wl;
  Alcotest.(check int) "same evaluations" a.Dtr_search.evaluations
    b.Dtr_search.evaluations;
  Alcotest.(check int) "same improvements" a.Dtr_search.improvements
    b.Dtr_search.improvements;
  Alcotest.(check int) "same memo hits" a.Dtr_search.memo_hits
    b.Dtr_search.memo_hits;
  Alcotest.(check int) "same memo misses" a.Dtr_search.memo_misses
    b.Dtr_search.memo_misses;
  List.iter2
    (fun (pa, oa) (pb, ob) ->
      Alcotest.(check bool) "same phase" true (pa = pb);
      Alcotest.(check int) "same phase objective" 0 (Lexico.compare oa ob))
    a.Dtr_search.phase_objectives b.Dtr_search.phase_objectives

(* Engine-level memo accounting, exact to the evaluation: a scan of n
   fresh candidates counts n evaluations and n misses; rescanning the
   same neighborhood counts nothing and serves bitwise-equal summaries;
   committing the winner is uncounted; and after the commit only the
   one candidate that restores the (never-memoized) starting vector
   misses.  Identical at every jobs value — this also pins the
   parallel count-transfer scheme (per-task measurement rolled back
   and re-added on the calling domain). *)
let test_scan_memo_exact_counts () =
  List.iter
    (fun jobs ->
      let p = ring_problem () in
      let mid = (Weights.min_weight + Weights.max_weight) / 2 in
      let w0 = Weights.uniform p.Problem.graph mid in
      Scan.with_engine ~jobs p @@ fun scan ->
      let sol = Problem.eval_str p ~w:w0 in
      let ctx = Problem.ctx_of_solution p sol in
      let memo = Vmemo.create () in
      let candidates_excluding current =
        let acc = ref [] in
        for v = Weights.max_weight downto Weights.min_weight do
          if v <> current then acc := v :: !acc
        done;
        Array.of_list !acc
      in
      let vals = candidates_excluding w0.(0) in
      let n = Array.length vals in
      let changes_of i = [ (0, vals.(i)) ] in
      let e0 = Problem.domain_evaluations () in
      let s1 = Scan.evaluate scan ctx ~memo ~cls:`H ~changes_of n in
      Alcotest.(check int) "first scan: all misses" n (Vmemo.misses memo);
      Alcotest.(check int) "first scan: no hits" 0 (Vmemo.hits memo);
      Alcotest.(check int) "first scan: n counted evaluations" n
        (Problem.domain_evaluations () - e0);
      let s2 = Scan.evaluate scan ctx ~memo ~cls:`H ~changes_of n in
      Alcotest.(check int) "revisit: all hits" n (Vmemo.hits memo);
      Alcotest.(check int) "revisit: no new misses" n (Vmemo.misses memo);
      Alcotest.(check int) "revisit: zero new evaluations" n
        (Problem.domain_evaluations () - e0);
      Array.iteri
        (fun i (x : Scan.summary) ->
          let y = s2.(i) in
          Alcotest.(check bool) "cached summary bitwise-equal" true
            (Lexico.compare x.Scan.objective y.Scan.objective = 0
            && x.Scan.phi_h = y.Scan.phi_h
            && x.Scan.phi_l = y.Scan.phi_l))
        s1;
      let sol' = Scan.commit scan ctx ~cls:`H ~changes:(changes_of 0) in
      Alcotest.(check int) "commit is uncounted" n
        (Problem.domain_evaluations () - e0);
      Alcotest.(check int) "committed weight installed" vals.(0)
        sol'.Problem.wh.(0);
      let vals' = candidates_excluding vals.(0) in
      ignore
        (Scan.evaluate scan ctx ~memo ~cls:`H
           ~changes_of:(fun i -> [ (0, vals'.(i)) ])
           (Array.length vals'));
      Alcotest.(check int) "post-commit: one miss (the starting vector)"
        (n + 1) (Vmemo.misses memo);
      Alcotest.(check int) "post-commit: every other candidate hits"
        ((2 * n) - 1)
        (Vmemo.hits memo);
      Alcotest.(check int) "post-commit: one counted evaluation" (n + 1)
        (Problem.domain_evaluations () - e0))
    [ 1; 3 ]

(* ------------------------------------------------------------------ *)
(* Trace determinism: the event stream (not just the result) must be
   identical at every jobs/scan_jobs value once t_us is normalized. *)

module Trace = Dtr_core.Trace

let norm_event (e : Trace.event) = Trace.to_json { e with Trace.time_us = 0. }

let check_same_trace a b =
  Alcotest.(check (list string)) "same events (t_us normalized)"
    (List.map norm_event (Trace.events a))
    (List.map norm_event (Trace.events b))

let test_str_trace_scan_jobs_invariance () =
  List.iter
    (fun model ->
      let p = ring_problem ~model () in
      let run scan_jobs =
        let ring = Trace.ring () in
        ignore
          (Str_search.run ~trace:ring (Prng.create 7)
             (with_scan_jobs tiny_config scan_jobs) p);
        ring
      in
      let a = run 1 in
      Alcotest.(check bool) "trace not empty" true (Trace.length a > 0);
      check_same_trace a (run 4))
    [ Objective.Load; Objective.Sla Dtr_cost.Sla.default ]

let test_dtr_trace_scan_jobs_invariance () =
  let p = ring_problem () in
  let run scan_jobs =
    let ring = Trace.ring () in
    ignore
      (Dtr_search.run ~trace:ring (Prng.create 9)
         (with_scan_jobs tiny_config scan_jobs) p);
    ring
  in
  let a = run 1 in
  Alcotest.(check bool) "trace not empty" true (Trace.length a > 0);
  check_same_trace a (run 4)

let test_multistart_trace_jobs_invariance () =
  let p = ring_problem () in
  List.iter
    (fun algo ->
      let run jobs =
        let ring = Trace.ring () in
        ignore
          (Multistart.run ~jobs ~trace:ring ~restarts:3 ~algo (Prng.create 11)
             tiny_config p);
        ring
      in
      let a = run 1 in
      Alcotest.(check bool) "trace not empty" true (Trace.length a > 0);
      (* Worker-domain events must come back tagged with their restart
         and serialized in restart order. *)
      let restarts_seen =
        List.map (fun (e : Trace.event) -> e.Trace.restart) (Trace.events a)
      in
      Alcotest.(check bool) "restart order non-decreasing" true
        (List.for_all2 ( <= ) restarts_seen (List.tl restarts_seen @ [ 2 ]));
      check_same_trace a (run 2))
    [ Multistart.Str; Multistart.Dtr ]

let test_trace_disabled_noop () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.disabled);
  Trace.emit Trace.disabled ~kind:Trace.Str_scan ~iteration:0 ();
  Alcotest.(check int) "still empty" 0 (Trace.length Trace.disabled);
  Alcotest.(check (list string)) "no events" []
    (List.map norm_event (Trace.events Trace.disabled))

let test_trace_convergence_monotone () =
  let p = ring_problem () in
  let ring = Trace.ring () in
  let report = Str_search.run ~trace:ring (Prng.create 13) tiny_config p in
  let curve = Trace.convergence (Trace.events ring) in
  Alcotest.(check bool) "curve not empty" true (curve <> []);
  let rec check = function
    | (e1, o1) :: ((e2, o2) :: _ as rest) ->
        Alcotest.(check bool) "evaluations increase" true (e1 < e2);
        Alcotest.(check bool) "objective strictly improves" true (o2 < o1);
        check rest
    | _ -> ()
  in
  check curve;
  let _, last = List.nth curve (List.length curve - 1) in
  Alcotest.(check bool) "curve ends at the reported optimum" true
    (last = Trace.pair report.Str_search.objective)

let test_trace_ring_capacity () =
  let ring = Trace.ring ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit ring ~kind:Trace.Probe ~iteration:i ()
  done;
  let evs = Trace.events ring in
  Alcotest.(check int) "bounded" 4 (List.length evs);
  Alcotest.(check (list int)) "keeps the most recent" [ 6; 7; 8; 9 ]
    (List.map (fun (e : Trace.event) -> e.Trace.iteration) evs)

(* ------------------------------------------------------------------ *)
(* Anneal energy cache: evaluation count and trajectory *)

let light_schedule =
  {
    Anneal_search.t0_ratio = 0.05;
    cooling = 0.8;
    moves_per_temp = 5;
    t_min_ratio = 0.01;
  }

(* Temperature levels of one phase: scale-invariant in the initial
   energy (t_min is defined as a ratio of t0), so e0 = 1 reproduces the
   search's own loop. *)
let phase_temps s =
  let t = ref s.Anneal_search.t0_ratio in
  let t_min = !t *. s.Anneal_search.t_min_ratio in
  let n = ref 0 in
  while !t > t_min do
    incr n;
    t := !t *. s.Anneal_search.cooling
  done;
  !n

let test_anneal_one_eval_per_move () =
  let p = ring_problem () in
  let eval0 = Problem.evaluations () in
  let report =
    Anneal_search.run ~schedule:light_schedule (Prng.create 21) tiny_config p
  in
  let spent = Problem.evaluations () - eval0 in
  (* 1 initial eval_dtr + 1 recombination between phases + exactly one
     combine per proposed move: with the incumbent's energy cached,
     nothing else evaluates. *)
  let temps = phase_temps light_schedule in
  let expected =
    2 + (2 * temps * light_schedule.Anneal_search.moves_per_temp)
  in
  Alcotest.(check int) "one evaluation per proposed move" expected spent;
  Alcotest.(check int) "report agrees with global counter" expected
    report.Anneal_search.evaluations

let test_anneal_deterministic () =
  let p = ring_problem () in
  let run () =
    Anneal_search.run ~schedule:light_schedule (Prng.create 22) tiny_config p
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "same objective (exact)" 0
    (Lexico.compare a.Anneal_search.objective b.Anneal_search.objective);
  Alcotest.(check int) "same accepted count" a.Anneal_search.accepted
    b.Anneal_search.accepted;
  Alcotest.(check (array int)) "same wh" a.Anneal_search.best.Problem.wh
    b.Anneal_search.best.Problem.wh

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "ordered results" `Quick test_pool_ordering;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_and_single;
          Alcotest.test_case "lowest-index exception" `Quick
            test_pool_exception_lowest_index;
          Alcotest.test_case "reuse across batches" `Quick test_pool_reuse;
          Alcotest.test_case "lifecycle" `Quick test_pool_lifecycle;
        ] );
      ( "multistart",
        [
          Alcotest.test_case "jobs-invariant results" `Slow
            test_multistart_jobs_invariance;
          Alcotest.test_case "picks the best restart" `Quick
            test_multistart_picks_best;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "failure sweep jobs-invariant" `Slow
            test_failure_sweep_jobs_invariance;
          Alcotest.test_case "run_all jobs-invariant" `Quick
            test_run_all_jobs_invariance;
        ] );
      ( "counters",
        [
          Alcotest.test_case "atomic totals exact" `Quick
            test_counters_exact_across_domains;
          Alcotest.test_case "per-report counts scheduling-independent" `Slow
            test_report_evaluations_scheduling_independent;
        ] );
      ( "scan",
        [
          Alcotest.test_case "str scan-jobs invariant" `Slow
            test_str_scan_jobs_invariance;
          Alcotest.test_case "dtr scan-jobs invariant" `Slow
            test_dtr_scan_jobs_invariance;
          Alcotest.test_case "memo exact counts" `Quick
            test_scan_memo_exact_counts;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "one eval per proposed move" `Quick
            test_anneal_one_eval_per_move;
          Alcotest.test_case "deterministic with energy cache" `Quick
            test_anneal_deterministic;
        ] );
      ( "trace",
        [
          Alcotest.test_case "str trace scan-jobs invariant" `Slow
            test_str_trace_scan_jobs_invariance;
          Alcotest.test_case "dtr trace scan-jobs invariant" `Slow
            test_dtr_trace_scan_jobs_invariance;
          Alcotest.test_case "multistart trace jobs invariant" `Slow
            test_multistart_trace_jobs_invariance;
          Alcotest.test_case "disabled sink is a no-op" `Quick
            test_trace_disabled_noop;
          Alcotest.test_case "convergence curve monotone" `Quick
            test_trace_convergence_monotone;
          Alcotest.test_case "bounded ring keeps latest" `Quick
            test_trace_ring_capacity;
        ] );
    ]
