(* Tests for Dtr_topology: classic shapes, the random and power-law
   generators, the ISP backbone, and serialization. *)

module Graph = Dtr_graph.Graph
module Prng = Dtr_util.Prng
module Classic = Dtr_topology.Classic
module Random_topo = Dtr_topology.Random_topo
module Power_law = Dtr_topology.Power_law
module Isp = Dtr_topology.Isp
module Topo_io = Dtr_topology.Topo_io

(* ------------------------------------------------------------------ *)
(* Classic *)

let test_triangle () =
  let g = Classic.triangle () in
  Alcotest.(check int) "nodes" 3 (Graph.node_count g);
  Alcotest.(check int) "arcs" 6 (Graph.arc_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_ring () =
  let g = Classic.ring 7 in
  Alcotest.(check int) "nodes" 7 (Graph.node_count g);
  Alcotest.(check int) "arcs" 14 (Graph.arc_count g);
  for v = 0 to 6 do
    Alcotest.(check int) "degree 2" 2 (Graph.out_degree g v)
  done;
  Alcotest.check_raises "too small"
    (Invalid_argument "Classic.ring: need at least 3 nodes") (fun () ->
      ignore (Classic.ring 2))

let test_full_mesh () =
  let g = Classic.full_mesh 5 in
  Alcotest.(check int) "arcs" 20 (Graph.arc_count g);
  for v = 0 to 4 do
    Alcotest.(check int) "degree 4" 4 (Graph.out_degree g v)
  done

let test_grid () =
  let g = Classic.grid ~rows:3 ~cols:4 () in
  Alcotest.(check int) "nodes" 12 (Graph.node_count g);
  (* 3*3 horizontal + 2*4 vertical = 17 links, 34 arcs *)
  Alcotest.(check int) "arcs" 34 (Graph.arc_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_line () =
  let g = Classic.line 5 in
  Alcotest.(check int) "arcs" 8 (Graph.arc_count g);
  Alcotest.(check int) "end degree" 1 (Graph.out_degree g 0);
  Alcotest.(check int) "middle degree" 2 (Graph.out_degree g 2)

let test_dumbbell () =
  let g = Classic.dumbbell ~capacity:10. ~bottleneck:1. 3 in
  Alcotest.(check int) "nodes" 8 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g);
  (* Bottleneck is the hub-hub link. *)
  match Graph.find_arc g ~src:3 ~dst:4 with
  | Some id ->
      Alcotest.(check (float 0.)) "bottleneck capacity" 1.
        (Graph.arc g id).Graph.capacity
  | None -> Alcotest.fail "hub link missing"

(* ------------------------------------------------------------------ *)
(* Random_topo *)

let test_random_default_shape () =
  let g = Random_topo.generate (Prng.create 1) Random_topo.default in
  Alcotest.(check int) "nodes" 30 (Graph.node_count g);
  Alcotest.(check int) "arcs = 2 x 150" 300 (Graph.arc_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_random_degree_balance () =
  let g = Random_topo.generate (Prng.create 2) Random_topo.default in
  let degs = Array.init 30 (fun v -> Graph.out_degree g v) in
  let lo = Array.fold_left min max_int degs in
  let hi = Array.fold_left max 0 degs in
  (* 150 links over 30 nodes = average degree 10; balanced generator
     should stay within a tight band. *)
  Alcotest.(check bool) "similar degrees" true (hi - lo <= 3)

let test_random_delay_range () =
  let g = Random_topo.generate (Prng.create 3) Random_topo.default in
  Array.iter
    (fun (a : Graph.arc) ->
      Alcotest.(check bool) "delay in [1.2, 15]" true
        (a.Graph.delay >= 1.2 && a.Graph.delay <= 15.))
    (Graph.arcs g)

let test_random_capacity () =
  let g = Random_topo.generate (Prng.create 4) Random_topo.default in
  Array.iter
    (fun (a : Graph.arc) ->
      Alcotest.(check (float 0.)) "500 Mbps" 500. a.Graph.capacity)
    (Graph.arcs g)

let test_random_reproducible () =
  let a = Random_topo.generate (Prng.create 7) Random_topo.default in
  let b = Random_topo.generate (Prng.create 7) Random_topo.default in
  Alcotest.(check string) "same serialization" (Topo_io.to_string a)
    (Topo_io.to_string b)

let test_random_rejects () =
  Alcotest.check_raises "too few links"
    (Invalid_argument "Random_topo.generate: too few links to connect")
    (fun () ->
      ignore
        (Random_topo.generate (Prng.create 1)
           { Random_topo.default with nodes = 10; links = 5 }));
  Alcotest.check_raises "too many links"
    (Invalid_argument "Random_topo.generate: more links than node pairs")
    (fun () ->
      ignore
        (Random_topo.generate (Prng.create 1)
           { Random_topo.default with nodes = 5; links = 11 }))

let test_random_tree_case () =
  let p = { Random_topo.default with nodes = 8; links = 7 } in
  let g = Random_topo.generate (Prng.create 5) p in
  Alcotest.(check int) "tree arcs" 14 (Graph.arc_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

(* ------------------------------------------------------------------ *)
(* Power_law *)

let test_power_law_default_shape () =
  let g = Power_law.generate (Prng.create 1) Power_law.default in
  Alcotest.(check int) "nodes" 30 (Graph.node_count g);
  Alcotest.(check int) "162 links" 162 (Power_law.link_count Power_law.default);
  Alcotest.(check int) "arcs = 2 x 162" 324 (Graph.arc_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_power_law_heavy_tail () =
  let g = Power_law.generate (Prng.create 2) Power_law.default in
  let degs = Power_law.degrees g in
  let hi = Array.fold_left max 0 degs in
  let avg = float_of_int (Array.fold_left ( + ) 0 degs) /. 30. in
  (* Preferential attachment should grow hubs well above the mean. *)
  Alcotest.(check bool) "has hub" true (float_of_int hi > 1.5 *. avg)

let test_power_law_min_degree () =
  let g = Power_law.generate (Prng.create 3) Power_law.default in
  Array.iter
    (fun d -> Alcotest.(check bool) "degree >= m" true (d >= 6))
    (Power_law.degrees g)

let test_power_law_top_degree_nodes () =
  let g = Power_law.generate (Prng.create 4) Power_law.default in
  let top = Power_law.top_degree_nodes g 3 in
  Alcotest.(check int) "three sinks" 3 (Array.length top);
  let degs = Power_law.degrees g in
  let third_best = degs.(top.(2)) in
  Array.iteri
    (fun v d ->
      if not (Array.mem v top) then
        Alcotest.(check bool) "top really top" true (d <= third_best))
    degs

let test_power_law_rejects () =
  Alcotest.check_raises "m > m0"
    (Invalid_argument "Power_law.generate: need 1 <= m <= m0") (fun () ->
      ignore
        (Power_law.generate (Prng.create 1)
           { Power_law.default with m0 = 2; m = 3 }))

(* ------------------------------------------------------------------ *)
(* Isp *)

let test_isp_shape () =
  let g = Isp.generate () in
  Alcotest.(check int) "16 nodes" 16 (Graph.node_count g);
  Alcotest.(check int) "70 arcs" 70 (Graph.arc_count g);
  Alcotest.(check int) "35 links" 35 Isp.link_count;
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_isp_delays_in_range () =
  let g = Isp.generate () in
  Array.iter
    (fun (a : Graph.arc) ->
      Alcotest.(check bool) "delay in [8, 15]" true
        (a.Graph.delay >= 8. -. 1e-9 && a.Graph.delay <= 15. +. 1e-9))
    (Graph.arcs g)

let test_isp_symmetric () =
  let g = Isp.generate () in
  Alcotest.(check int) "35 undirected links" 35
    (Array.length (Graph.undirected_link_pairs g));
  Array.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-9)) "symmetric delays"
        (Graph.arc g a).Graph.delay (Graph.arc g b).Graph.delay)
    (Graph.undirected_link_pairs g)

let test_isp_city_names () =
  Alcotest.(check string) "node 0" "Seattle" (Isp.city_name 0);
  Alcotest.(check string) "node 15" "Boston" (Isp.city_name 15);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Isp.city_name: out of range") (fun () ->
      ignore (Isp.city_name 16))

let test_isp_great_circle () =
  (* Seattle -> Boston is about 4,000 km. *)
  let d = Isp.great_circle_km (Isp.city_position 0) (Isp.city_position 15) in
  Alcotest.(check bool) "coast to coast" true (d > 3500. && d < 4500.);
  Alcotest.(check (float 1e-9)) "zero distance to self" 0.
    (Isp.great_circle_km (Isp.city_position 3) (Isp.city_position 3))

let test_isp_deterministic () =
  Alcotest.(check string) "no randomness"
    (Topo_io.to_string (Isp.generate ()))
    (Topo_io.to_string (Isp.generate ()))

let test_isp_custom_capacity () =
  let g = Isp.generate ~capacity:100. () in
  Array.iter
    (fun (a : Graph.arc) ->
      Alcotest.(check (float 0.)) "100 Mbps" 100. a.Graph.capacity)
    (Graph.arcs g)

(* ------------------------------------------------------------------ *)
(* Abilene *)

module Abilene = Dtr_topology.Abilene

let test_abilene_shape () =
  let g = Abilene.generate () in
  Alcotest.(check int) "11 nodes" 11 (Graph.node_count g);
  Alcotest.(check int) "28 arcs" 28 (Graph.arc_count g);
  Alcotest.(check int) "14 links" 14 Abilene.link_count;
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_abilene_known_links () =
  let g = Abilene.generate () in
  (* Chicago (8) - New York (9) is a link; Seattle (0) - NY (9) is not. *)
  Alcotest.(check bool) "Chicago-NY" true (Graph.find_arc g ~src:8 ~dst:9 <> None);
  Alcotest.(check bool) "no Seattle-NY" true
    (Graph.find_arc g ~src:0 ~dst:9 = None)

let test_abilene_delays_geographic () =
  let g = Abilene.generate () in
  (* Chicago-NY is ~1,150 km: about 5.7 ms at 200 km/ms. *)
  match Graph.find_arc g ~src:8 ~dst:9 with
  | None -> Alcotest.fail "missing link"
  | Some id ->
      let d = (Graph.arc g id).Graph.delay in
      Alcotest.(check bool) "plausible delay" true (d > 4. && d < 8.)

let test_abilene_capacity () =
  let g = Abilene.generate () in
  Alcotest.(check (float 0.)) "OC-192" 9920. (Graph.arc g 0).Graph.capacity;
  let g100 = Abilene.generate ~capacity:100. () in
  Alcotest.(check (float 0.)) "custom" 100. (Graph.arc g100 0).Graph.capacity

let test_abilene_city_names () =
  Alcotest.(check string) "node 0" "Seattle" (Abilene.city_name 0);
  Alcotest.(check string) "node 10" "WashingtonDC" (Abilene.city_name 10);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Abilene.city_name: out of range") (fun () ->
      ignore (Abilene.city_name 11))

(* ------------------------------------------------------------------ *)
(* Waxman *)

module Waxman = Dtr_topology.Waxman

let test_waxman_connected () =
  for seed = 0 to 4 do
    let g = Waxman.generate (Prng.create seed) Waxman.default in
    Alcotest.(check int) "30 nodes" 30 (Graph.node_count g);
    Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)
  done

let test_waxman_delays_in_range () =
  let g = Waxman.generate (Prng.create 1) Waxman.default in
  Array.iter
    (fun (a : Graph.arc) ->
      Alcotest.(check bool) "delay in range" true
        (a.Graph.delay >= 1.2 -. 1e-9 && a.Graph.delay <= 15. +. 1e-9))
    (Graph.arcs g)

let test_waxman_locality () =
  (* With a small beta, most links should connect nearby nodes: the
     mean linked distance must be well below the mean pairwise
     distance. *)
  let p = { Waxman.default with Waxman.nodes = 40; alpha = 0.9; beta = 0.08 } in
  let g, pos = Waxman.positions (Prng.create 2) p in
  let dist u v =
    let xu, yu = pos.(u) and xv, yv = pos.(v) in
    sqrt (((xu -. xv) ** 2.) +. ((yu -. yv) ** 2.))
  in
  let linked = ref [] in
  Array.iter
    (fun (a : Graph.arc) -> linked := dist a.Graph.src a.Graph.dst :: !linked)
    (Graph.arcs g);
  let all = ref [] in
  for u = 0 to 39 do
    for v = u + 1 to 39 do
      all := dist u v :: !all
    done
  done;
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  Alcotest.(check bool) "links are local" true (mean !linked < mean !all)

let test_waxman_alpha_density () =
  (* Higher alpha must produce more links on the same node placement
     (statistically; check with a comfortable margin). *)
  let sparse =
    Waxman.generate (Prng.create 3) { Waxman.default with Waxman.alpha = 0.05 }
  in
  let dense =
    Waxman.generate (Prng.create 3) { Waxman.default with Waxman.alpha = 0.9 }
  in
  Alcotest.(check bool) "alpha increases density" true
    (Graph.arc_count dense > Graph.arc_count sparse)

let test_waxman_rejects () =
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Waxman.generate: alpha must be in (0, 1]") (fun () ->
      ignore
        (Waxman.generate (Prng.create 1) { Waxman.default with Waxman.alpha = 0. }))

(* ------------------------------------------------------------------ *)
(* Transit_stub *)

module Transit_stub = Dtr_topology.Transit_stub

let test_transit_stub_shape () =
  let p = Transit_stub.default in
  let g = Transit_stub.generate (Prng.create 1) p in
  Alcotest.(check int) "node count" (Transit_stub.node_count p)
    (Graph.node_count g);
  Alcotest.(check int) "28 nodes" 28 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_transit_stub_core_mesh () =
  let p = Transit_stub.default in
  let g = Transit_stub.generate (Prng.create 2) p in
  for u = 0 to p.Transit_stub.transit - 1 do
    for v = 0 to p.Transit_stub.transit - 1 do
      if u <> v then
        Alcotest.(check bool) "core is a full mesh" true
          (Graph.find_arc g ~src:u ~dst:v <> None)
    done
  done

let test_transit_stub_capacities () =
  let p = Transit_stub.default in
  let g = Transit_stub.generate (Prng.create 3) p in
  Array.iter
    (fun (a : Graph.arc) ->
      let core =
        Transit_stub.is_transit p a.Graph.src && Transit_stub.is_transit p a.Graph.dst
      in
      Alcotest.(check (float 0.)) "capacity by tier"
        (if core then 1000. else 500.)
        a.Graph.capacity)
    (Graph.arcs g)

let test_transit_stub_is_transit () =
  let p = Transit_stub.default in
  Alcotest.(check bool) "node 0" true (Transit_stub.is_transit p 0);
  Alcotest.(check bool) "node 3" true (Transit_stub.is_transit p 3);
  Alcotest.(check bool) "node 4" false (Transit_stub.is_transit p 4)

let test_transit_stub_single_node_stubs () =
  let p =
    { Transit_stub.default with Transit_stub.stub_size = 1; stubs_per_transit = 3 }
  in
  let g = Transit_stub.generate (Prng.create 4) p in
  Alcotest.(check int) "node count" 16 (Graph.node_count g);
  Alcotest.(check bool) "connected" true (Graph.is_strongly_connected g)

let test_transit_stub_rejects () =
  Alcotest.check_raises "one transit"
    (Invalid_argument "Transit_stub.generate: need >= 2 transit") (fun () ->
      ignore
        (Transit_stub.generate (Prng.create 1)
           { Transit_stub.default with Transit_stub.transit = 1 }))

(* ------------------------------------------------------------------ *)
(* Topo_io *)

let test_io_roundtrip () =
  let g = Isp.generate () in
  match Topo_io.of_string (Topo_io.to_string g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      Alcotest.(check int) "nodes" (Graph.node_count g) (Graph.node_count g');
      Alcotest.(check int) "arcs" (Graph.arc_count g) (Graph.arc_count g');
      Alcotest.(check string) "identical" (Topo_io.to_string g)
        (Topo_io.to_string g')

let test_io_comments_and_blanks () =
  let src = "# a comment\n\nnodes 2\narc 0 1 10 1.5\n" in
  match Topo_io.of_string src with
  | Error e -> Alcotest.fail e
  | Ok g ->
      Alcotest.(check int) "one arc" 1 (Graph.arc_count g);
      Alcotest.(check (float 1e-9)) "delay kept" 1.5 (Graph.arc g 0).Graph.delay

let test_io_errors () =
  (match Topo_io.of_string "arc 0 1 1 1\n" with
  | Error e ->
      Alcotest.(check string) "missing nodes" "missing 'nodes' directive" e
  | Ok _ -> Alcotest.fail "expected error");
  (match Topo_io.of_string "nodes 2\narc 0 nope 1 1\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected parse error");
  match Topo_io.of_string "nodes 2\nfrobnicate\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown directive error"

let test_io_whitespace_variants () =
  (* Tabs, CRLF line endings, and runs of blanks parse identically to
     the canonical single-space form. *)
  let canonical = "nodes 3\narc 0 1 10 1.5\narc 1 2 20 2.5\n" in
  let messy = "nodes\t3\r\n\r\narc\t0  1\t10   1.5\r\narc 1\t2 20\t2.5\r\n" in
  match (Topo_io.of_string canonical, Topo_io.of_string messy) with
  | Ok a, Ok b ->
      Alcotest.(check string) "same graph" (Topo_io.to_string a)
        (Topo_io.to_string b)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_io_crlf_tab_roundtrip () =
  (* Rewrite a full canonical serialization with CRLF endings and tab
     separators: it must parse back to the byte-identical canonical
     form. *)
  let g = Isp.generate () in
  let s = Topo_io.to_string g in
  let buf = Buffer.create (String.length s * 2) in
  String.iter
    (function
      | ' ' -> Buffer.add_char buf '\t'
      | '\n' -> Buffer.add_string buf "\r\n"
      | c -> Buffer.add_char buf c)
    s;
  match Topo_io.of_string (Buffer.contents buf) with
  | Error e -> Alcotest.fail e
  | Ok g' -> Alcotest.(check string) "identical" s (Topo_io.to_string g')

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_io_rejects_invalid_values () =
  (* Corpus of files that used to parse and then blow up deep inside a
     search; each must now fail at parse time with a line number. *)
  let cases =
    [
      ("nodes 2\narc 0 1 0 1\n", "line 2");
      ("nodes 2\narc 0 1 -5 1\n", "line 2");
      ("nodes 2\narc 0 1 10 -1\n", "line 2");
      ("nodes 2\narc 0 1 nan 1\n", "line 2");
      ("nodes 2\narc 0 1 10 nan\n", "line 2");
      ("nodes 2\narc 0 1 inf 1\n", "line 2");
      ("nodes 2\narc 0 1 10 inf\n", "line 2");
      ("nodes 2\narc 0 1 -inf 1\n", "line 2");
      ("nodes 0\n", "line 1");
      ("nodes -3\n", "line 1");
      ("nodes 2\n# comment\n\narc 0 1 0 1\n", "line 4");
      ("nodes 2\narc 0 1 1\n", "line 2");
      ("nodes 2\narc 0 1 1 1 1\n", "line 2");
    ]
  in
  List.iter
    (fun (src, frag) ->
      match Topo_io.of_string src with
      | Ok _ -> Alcotest.failf "accepted %S" src
      | Error e ->
          if not (contains_substring e frag) then
            Alcotest.failf "error %S for %S does not mention %S" e src frag)
    cases

let prop_io_never_raises =
  (* Arbitrary input must come back as Ok or Error, never an
     exception. *)
  QCheck.Test.make ~name:"of_string never raises on arbitrary input"
    ~count:300
    QCheck.(string_of_size Gen.(int_range 0 80))
    (fun s ->
      match Topo_io.of_string s with Ok _ | Error _ -> true)

let prop_io_roundtrip_random_graphs =
  QCheck.Test.make ~name:"serialization roundtrips any generated graph"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Prng.create seed in
      let g =
        Random_topo.generate rng
          { Random_topo.default with Random_topo.nodes = 12; links = 20 }
      in
      match Topo_io.of_string (Topo_io.to_string g) with
      | Error _ -> false
      | Ok g' -> Topo_io.to_string g = Topo_io.to_string g')

let prop_weights_io_roundtrip =
  QCheck.Test.make ~name:"weight serialization roundtrips" ~count:100
    QCheck.(pair (int_range 1 4) (int_range 0 1_000_000))
    (fun (topos, seed) ->
      let rng = Prng.create seed in
      let sets =
        Array.init topos (fun _ ->
            Array.init 17 (fun _ -> Dtr_util.Prng.int_incl rng 1 30))
      in
      match
        Dtr_routing.Weights_io.of_string (Dtr_routing.Weights_io.to_string sets)
      with
      | Error _ -> false
      | Ok back -> back = sets)

let test_io_file_roundtrip () =
  let g = Classic.triangle () in
  let path = Filename.temp_file "dtr_topo" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Topo_io.save g path;
      match Topo_io.load path with
      | Error e -> Alcotest.fail e
      | Ok g' ->
          Alcotest.(check string) "roundtrip" (Topo_io.to_string g)
            (Topo_io.to_string g'))

let () =
  Alcotest.run "dtr_topology"
    [
      ( "classic",
        [
          Alcotest.test_case "triangle" `Quick test_triangle;
          Alcotest.test_case "ring" `Quick test_ring;
          Alcotest.test_case "full mesh" `Quick test_full_mesh;
          Alcotest.test_case "grid" `Quick test_grid;
          Alcotest.test_case "line" `Quick test_line;
          Alcotest.test_case "dumbbell" `Quick test_dumbbell;
        ] );
      ( "random",
        [
          Alcotest.test_case "default shape" `Quick test_random_default_shape;
          Alcotest.test_case "degree balance" `Quick test_random_degree_balance;
          Alcotest.test_case "delay range" `Quick test_random_delay_range;
          Alcotest.test_case "capacity" `Quick test_random_capacity;
          Alcotest.test_case "reproducible" `Quick test_random_reproducible;
          Alcotest.test_case "rejects bad params" `Quick test_random_rejects;
          Alcotest.test_case "spanning tree case" `Quick test_random_tree_case;
        ] );
      ( "power-law",
        [
          Alcotest.test_case "default shape" `Quick test_power_law_default_shape;
          Alcotest.test_case "heavy tail" `Quick test_power_law_heavy_tail;
          Alcotest.test_case "min degree" `Quick test_power_law_min_degree;
          Alcotest.test_case "top degree nodes" `Quick
            test_power_law_top_degree_nodes;
          Alcotest.test_case "rejects bad params" `Quick test_power_law_rejects;
        ] );
      ( "isp",
        [
          Alcotest.test_case "shape" `Quick test_isp_shape;
          Alcotest.test_case "delays in range" `Quick test_isp_delays_in_range;
          Alcotest.test_case "symmetric" `Quick test_isp_symmetric;
          Alcotest.test_case "city names" `Quick test_isp_city_names;
          Alcotest.test_case "great circle" `Quick test_isp_great_circle;
          Alcotest.test_case "deterministic" `Quick test_isp_deterministic;
          Alcotest.test_case "custom capacity" `Quick test_isp_custom_capacity;
        ] );
      ( "abilene",
        [
          Alcotest.test_case "shape" `Quick test_abilene_shape;
          Alcotest.test_case "known links" `Quick test_abilene_known_links;
          Alcotest.test_case "geographic delays" `Quick
            test_abilene_delays_geographic;
          Alcotest.test_case "capacity" `Quick test_abilene_capacity;
          Alcotest.test_case "city names" `Quick test_abilene_city_names;
        ] );
      ( "waxman",
        [
          Alcotest.test_case "connected" `Quick test_waxman_connected;
          Alcotest.test_case "delays in range" `Quick
            test_waxman_delays_in_range;
          Alcotest.test_case "locality" `Quick test_waxman_locality;
          Alcotest.test_case "alpha drives density" `Quick
            test_waxman_alpha_density;
          Alcotest.test_case "rejects bad params" `Quick test_waxman_rejects;
        ] );
      ( "transit-stub",
        [
          Alcotest.test_case "shape" `Quick test_transit_stub_shape;
          Alcotest.test_case "core mesh" `Quick test_transit_stub_core_mesh;
          Alcotest.test_case "tiered capacities" `Quick
            test_transit_stub_capacities;
          Alcotest.test_case "is_transit" `Quick test_transit_stub_is_transit;
          Alcotest.test_case "single-node stubs" `Quick
            test_transit_stub_single_node_stubs;
          Alcotest.test_case "rejects bad params" `Quick
            test_transit_stub_rejects;
        ] );
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick
            test_io_comments_and_blanks;
          Alcotest.test_case "errors" `Quick test_io_errors;
          Alcotest.test_case "whitespace variants" `Quick
            test_io_whitespace_variants;
          Alcotest.test_case "CRLF/tab roundtrip" `Quick
            test_io_crlf_tab_roundtrip;
          Alcotest.test_case "invalid value corpus" `Quick
            test_io_rejects_invalid_values;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_io_never_raises;
          QCheck_alcotest.to_alcotest prop_io_roundtrip_random_graphs;
          QCheck_alcotest.to_alcotest prop_weights_io_roundtrip;
        ] );
    ]
