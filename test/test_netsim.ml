(* Tests for Dtr_netsim: the link queue, the discrete-event simulator
   (including validation against M/M/1 non-preemptive priority
   theory), and agreement with the flow-level ECMP model. *)

module Graph = Dtr_graph.Graph
module Matrix = Dtr_traffic.Matrix
module Packet = Dtr_netsim.Packet
module Link_queue = Dtr_netsim.Link_queue
module Sim = Dtr_netsim.Sim
module Classic = Dtr_topology.Classic
module Weights = Dtr_routing.Weights

let checkf eps = Alcotest.(check (float eps))

(* ------------------------------------------------------------------ *)
(* Packet *)

let mk_packet ?(klass = Packet.High) ?(size = 8000.) id =
  Packet.create ~id ~klass ~src:0 ~dst:1 ~size_bits:size ~created:0.

let test_packet_create () =
  let p = mk_packet 7 in
  Alcotest.(check int) "id" 7 p.Packet.id;
  Alcotest.(check int) "hops start at 0" 0 p.Packet.hops

let test_packet_rejects () =
  Alcotest.check_raises "zero size"
    (Invalid_argument "Packet.create: non-positive size") (fun () ->
      ignore
        (Packet.create ~id:0 ~klass:Packet.High ~src:0 ~dst:1 ~size_bits:0.
           ~created:0.));
  Alcotest.check_raises "self destination"
    (Invalid_argument "Packet.create: src = dst") (fun () ->
      ignore
        (Packet.create ~id:0 ~klass:Packet.High ~src:1 ~dst:1 ~size_bits:1.
           ~created:0.))

let test_klass_name () =
  Alcotest.(check string) "high" "high" (Packet.klass_name Packet.High);
  Alcotest.(check string) "low" "low" (Packet.klass_name Packet.Low)

(* ------------------------------------------------------------------ *)
(* Link_queue *)

let test_link_queue_priority_order () =
  let q = Link_queue.create ~capacity_mbps:10. () in
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 1));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.High 2));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 3));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.High 4));
  let next () =
    match Link_queue.take_next q with
    | Some p -> p.Packet.id
    | None -> -1
  in
  Alcotest.(check int) "high first" 2 (next ());
  Alcotest.(check int) "high again" 4 (next ());
  Alcotest.(check int) "then low fifo" 1 (next ());
  Alcotest.(check int) "then low" 3 (next ());
  Alcotest.(check int) "empty" (-1) (next ())

let test_link_queue_service_time () =
  let q = Link_queue.create ~capacity_mbps:10. () in
  (* 10 Mbps = 10,000 bits/ms; an 8,000-bit packet takes 0.8 ms. *)
  checkf 1e-9 "service time" 0.8 (Link_queue.service_time q (mk_packet 1))

let test_link_queue_lengths () =
  let q = Link_queue.create ~capacity_mbps:1. () in
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.High 1));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 2));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 3));
  Alcotest.(check int) "high len" 1 (Link_queue.queue_length q Packet.High);
  Alcotest.(check int) "low len" 2 (Link_queue.queue_length q Packet.Low);
  Alcotest.(check int) "total" 3 (Link_queue.total_queued q)

let test_link_queue_counters () =
  let q = Link_queue.create ~capacity_mbps:1. () in
  Link_queue.note_transmitted q Packet.High;
  Link_queue.note_transmitted q Packet.High;
  Link_queue.note_transmitted q Packet.Low;
  Alcotest.(check int) "high tx" 2 (Link_queue.transmitted q Packet.High);
  Alcotest.(check int) "low tx" 1 (Link_queue.transmitted q Packet.Low);
  Link_queue.add_busy_time q 1.5;
  Link_queue.add_busy_time q 0.5;
  checkf 1e-9 "busy time" 2. (Link_queue.busy_time q)

let test_link_queue_rejects () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Link_queue.create: non-positive capacity") (fun () ->
      ignore (Link_queue.create ~capacity_mbps:0. ()))

let test_link_queue_fifo_order () =
  let q = Link_queue.create ~discipline:Link_queue.Fifo ~capacity_mbps:10. () in
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 1));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.High 2));
  ignore (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 3));
  let next () =
    match Link_queue.take_next q with Some p -> p.Packet.id | None -> -1
  in
  (* Arrival order, regardless of class. *)
  Alcotest.(check int) "fifo 1" 1 (next ());
  Alcotest.(check int) "fifo 2" 2 (next ());
  Alcotest.(check int) "fifo 3" 3 (next ())

let test_link_queue_buffer_drops () =
  let q = Link_queue.create ~buffer_packets:2 ~capacity_mbps:1. () in
  Alcotest.(check bool) "first accepted" true
    (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 1) = Link_queue.Accepted);
  Alcotest.(check bool) "second accepted" true
    (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 2) = Link_queue.Accepted);
  Alcotest.(check bool) "third dropped" true
    (Link_queue.enqueue q (mk_packet ~klass:Packet.Low 3) = Link_queue.Dropped);
  (* Per-class bound: the high queue still has room. *)
  Alcotest.(check bool) "high accepted" true
    (Link_queue.enqueue q (mk_packet ~klass:Packet.High 4) = Link_queue.Accepted);
  Alcotest.(check int) "one low drop" 1 (Link_queue.dropped q Packet.Low);
  Alcotest.(check int) "no high drops" 0 (Link_queue.dropped q Packet.High)

let test_link_queue_rejects_bad_buffer () =
  Alcotest.check_raises "buffer"
    (Invalid_argument "Link_queue.create: non-positive buffer") (fun () ->
      ignore (Link_queue.create ~buffer_packets:0 ~capacity_mbps:1. ()))

let test_link_queue_discipline_accessor () =
  let p = Link_queue.create ~capacity_mbps:1. () in
  Alcotest.(check bool) "default priority" true
    (Link_queue.discipline p = Link_queue.Priority);
  let f = Link_queue.create ~discipline:Link_queue.Fifo ~capacity_mbps:1. () in
  Alcotest.(check bool) "fifo" true (Link_queue.discipline f = Link_queue.Fifo)

(* ------------------------------------------------------------------ *)
(* Sim: basic machinery *)

let two_node ?(capacity = 1.0) ?(delay = 0.5) () =
  Graph.build ~n:2 (Graph.add_symmetric ~capacity ~delay 0 1 [])

let simple_matrices demand_h demand_l =
  let th = Matrix.create 2 and tl = Matrix.create 2 in
  if demand_h > 0. then Matrix.set th 0 1 demand_h;
  if demand_l > 0. then Matrix.set tl 0 1 demand_l;
  (th, tl)

let test_sim_rejects_bad_config () =
  let g = two_node () in
  let th, tl = simple_matrices 0.1 0.1 in
  let w = Weights.uniform g 1 in
  Alcotest.check_raises "duration"
    (Invalid_argument "Sim.run: non-positive duration") (fun () ->
      ignore
        (Sim.run g ~wh:w ~wl:w ~th ~tl
           { Sim.default_config with Sim.duration = 0. }));
  Alcotest.check_raises "warmup"
    (Invalid_argument "Sim.run: warmup must lie in [0, duration)") (fun () ->
      ignore
        (Sim.run g ~wh:w ~wl:w ~th ~tl
           { Sim.default_config with Sim.duration = 10.; warmup = 10. }))

let test_sim_deterministic () =
  let g = two_node () in
  let th, tl = simple_matrices 0.2 0.2 in
  let w = Weights.uniform g 1 in
  let cfg = { Sim.default_config with Sim.duration = 500.; warmup = 50. } in
  let a = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  let b = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  Alcotest.(check int) "same deliveries" a.Sim.high.Sim.delivered
    b.Sim.high.Sim.delivered;
  checkf 1e-12 "same mean delay" a.Sim.high.Sim.mean_delay
    b.Sim.high.Sim.mean_delay

let test_sim_delivers_both_classes () =
  let g = two_node () in
  let th, tl = simple_matrices 0.2 0.3 in
  let w = Weights.uniform g 1 in
  let cfg = { Sim.default_config with Sim.duration = 2000.; warmup = 100. } in
  (* 0.2 Mbps of 8000-bit packets = 0.025 pkts/ms: expect ~45 measured
     deliveries over the 1900 ms measurement window. *)
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  Alcotest.(check bool) "high delivered" true (r.Sim.high.Sim.delivered > 20);
  Alcotest.(check bool) "low delivered" true (r.Sim.low.Sim.delivered > 30);
  Alcotest.(check bool) "injected >= delivered" true
    (r.Sim.high.Sim.injected >= r.Sim.high.Sim.delivered)

let test_sim_single_hop_count () =
  let g = two_node () in
  let th, tl = simple_matrices 0.2 0.2 in
  let w = Weights.uniform g 1 in
  let cfg = { Sim.default_config with Sim.duration = 1000.; warmup = 100. } in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  checkf 1e-9 "one hop" 1. r.Sim.high.Sim.mean_hops

let test_sim_pair_delay_accessor () =
  let g = two_node () in
  let th, tl = simple_matrices 0.2 0.2 in
  let w = Weights.uniform g 1 in
  let cfg = { Sim.default_config with Sim.duration = 1000.; warmup = 100. } in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  (match Sim.pair_mean_delay r ~src:0 ~dst:1 ~klass:Packet.High with
  | Some d -> Alcotest.(check bool) "positive delay" true (d > 0.)
  | None -> Alcotest.fail "expected delay sample");
  Alcotest.(check bool) "absent pair" true
    (Sim.pair_mean_delay r ~src:1 ~dst:0 ~klass:Packet.High = None)

let test_sim_delay_at_least_propagation () =
  let g = two_node ~delay:3. () in
  let th, tl = simple_matrices 0.1 0.1 in
  let w = Weights.uniform g 1 in
  let cfg = { Sim.default_config with Sim.duration = 1000.; warmup = 100. } in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  Alcotest.(check bool) "delay > propagation" true
    (r.Sim.high.Sim.mean_delay > 3.)

let test_sim_finite_buffers_drop () =
  (* Offered load 2x capacity: with a tiny buffer, low-priority packets
     must drop and the measured delay stays bounded by the buffer. *)
  let g = two_node ~capacity:1.0 ~delay:0.1 () in
  let th, tl = simple_matrices 0.5 1.5 in
  let w = Weights.uniform g 1 in
  let cfg =
    {
      Sim.duration = 20_000.;
      warmup = 1_000.;
      mean_packet_bits = 1000.;
      seed = 13;
      discipline = Link_queue.Priority;
      buffer_packets = Some 10;
    }
  in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  Alcotest.(check bool) "low drops" true (r.Sim.low.Sim.dropped > 100);
  Alcotest.(check bool) "high mostly spared" true
    (r.Sim.high.Sim.dropped < r.Sim.low.Sim.dropped / 10);
  (* Max sojourn bounded: the queue ahead holds at most buffer+1
     packets; generous cap to avoid flakiness with exponential sizes. *)
  Alcotest.(check bool) "low delay bounded by buffer" true
    (r.Sim.low.Sim.max_delay < 150.)

(* ------------------------------------------------------------------ *)
(* Sim: M/M/1 non-preemptive priority validation.

   Capacity 1 Mbps = 1000 bits/ms, mean packet 1000 bits -> mu = 1/ms.
   lambda_H = 0.3, lambda_L = 0.4 => rho_H = 0.3, rho = 0.7.
   Mean residual R = rho / mu = 0.7.
   W_H = R / (1 - rho_H) = 1.0;  W_L = R / ((1 - rho_H)(1 - rho)) = 10/3.
   Sojourn = W + 1/mu + propagation(0.5). *)

let mm1_result =
  lazy
    (let g = two_node ~capacity:1.0 ~delay:0.5 () in
     let th, tl = simple_matrices 0.3 0.4 in
     let w = Weights.uniform g 1 in
     let cfg =
       {
         Sim.duration = 200_000.;
         warmup = 5_000.;
         mean_packet_bits = 1000.;
         seed = 11;
         discipline = Dtr_netsim.Link_queue.Priority;
         buffer_packets = None;
       }
     in
     Sim.run g ~wh:w ~wl:w ~th ~tl cfg)

let test_mm1_high_priority_delay () =
  let r = Lazy.force mm1_result in
  checkf 0.15 "W_H + service + prop" 2.5 r.Sim.high.Sim.mean_delay

let test_mm1_low_priority_delay () =
  let r = Lazy.force mm1_result in
  checkf 0.35 "W_L + service + prop" (10. /. 3. +. 1.5)
    r.Sim.low.Sim.mean_delay

let test_mm1_utilization () =
  let r = Lazy.force mm1_result in
  checkf 0.02 "rho" 0.7 r.Sim.link_utilization.(0)

let test_mm1_priority_gap () =
  (* The low-priority class must wait strictly longer. *)
  let r = Lazy.force mm1_result in
  Alcotest.(check bool) "low waits more" true
    (r.Sim.low.Sim.mean_delay > r.Sim.high.Sim.mean_delay +. 1.)

let test_fifo_no_differentiation () =
  (* Under a shared FIFO both classes see the plain M/M/1 delay:
     W = rho / (mu (1 - rho)) = 0.7 / 0.3 = 2.333; + service + prop. *)
  let g = two_node ~capacity:1.0 ~delay:0.5 () in
  let th, tl = simple_matrices 0.3 0.4 in
  let w = Weights.uniform g 1 in
  let cfg =
    {
      Sim.duration = 100_000.;
      warmup = 5_000.;
      mean_packet_bits = 1000.;
      seed = 12;
      discipline = Link_queue.Fifo;
      buffer_packets = None;
    }
  in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  checkf 0.3 "high sees shared queue" (2.333 +. 1.5) r.Sim.high.Sim.mean_delay;
  checkf 0.3 "low sees shared queue" (2.333 +. 1.5) r.Sim.low.Sim.mean_delay;
  Alcotest.(check bool) "classes within noise of each other" true
    (Float.abs (r.Sim.high.Sim.mean_delay -. r.Sim.low.Sim.mean_delay) < 0.4)

(* ------------------------------------------------------------------ *)
(* Sim vs flow-level model: mean arc loads under ECMP. *)

let test_sim_matches_flow_level_utilization () =
  let g = Classic.ring ~capacity:5.0 ~delay:0.3 6 in
  let th = Matrix.create 6 and tl = Matrix.create 6 in
  Matrix.set th 0 3 0.6;
  Matrix.set tl 1 4 0.8;
  Matrix.set tl 5 2 0.5;
  let w = Weights.uniform g 1 in
  let eval = Dtr_routing.Evaluate.evaluate g ~wh:w ~wl:w ~th ~tl in
  let predicted = Dtr_routing.Evaluate.utilization eval in
  let cfg =
    { Sim.default_config with Sim.duration = 60_000.; warmup = 2_000.; mean_packet_bits = 1000.; seed = 3 }
  in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  Array.iteri
    (fun i p ->
      Alcotest.(check bool)
        (Printf.sprintf "arc %d within 0.02 of prediction" i)
        true
        (Float.abs (p -. r.Sim.link_utilization.(i)) < 0.02))
    predicted

let test_sim_ecmp_splits_evenly () =
  (* Triangle with equal weights: 0 -> 2 has a direct path (cost 1).
     Raise the direct arc weight to 2 so both the direct and the
     two-hop route tie, then check the split. *)
  let g = Classic.triangle ~capacity:5.0 ~delay:0.1 () in
  let th = Matrix.create 3 and tl = Matrix.create 3 in
  Matrix.set th 0 2 1.0;
  let w = Weights.uniform g 1 in
  (match Graph.find_arc g ~src:0 ~dst:2 with
  | Some id -> w.(id) <- 2
  | None -> Alcotest.fail "missing arc");
  let cfg =
    { Sim.default_config with Sim.duration = 30_000.; warmup = 1_000.; mean_packet_bits = 1000.; seed = 5 }
  in
  let r = Sim.run g ~wh:w ~wl:w ~th ~tl cfg in
  let util src dst =
    match Graph.find_arc g ~src ~dst with
    | Some id -> r.Sim.link_utilization.(id)
    | None -> 0.
  in
  (* Half the demand direct (0.5/5 = 0.1), half via node 1. *)
  checkf 0.02 "direct carries half" 0.1 (util 0 2);
  checkf 0.02 "first hop of detour" 0.1 (util 0 1);
  checkf 0.02 "second hop of detour" 0.1 (util 1 2)

let () =
  Alcotest.run "dtr_netsim"
    [
      ( "packet",
        [
          Alcotest.test_case "create" `Quick test_packet_create;
          Alcotest.test_case "rejects bad input" `Quick test_packet_rejects;
          Alcotest.test_case "class names" `Quick test_klass_name;
        ] );
      ( "link-queue",
        [
          Alcotest.test_case "priority order" `Quick
            test_link_queue_priority_order;
          Alcotest.test_case "service time" `Quick test_link_queue_service_time;
          Alcotest.test_case "queue lengths" `Quick test_link_queue_lengths;
          Alcotest.test_case "counters" `Quick test_link_queue_counters;
          Alcotest.test_case "rejects bad capacity" `Quick
            test_link_queue_rejects;
          Alcotest.test_case "fifo order" `Quick test_link_queue_fifo_order;
          Alcotest.test_case "discipline accessor" `Quick
            test_link_queue_discipline_accessor;
          Alcotest.test_case "buffer drops" `Quick test_link_queue_buffer_drops;
          Alcotest.test_case "rejects bad buffer" `Quick
            test_link_queue_rejects_bad_buffer;
        ] );
      ( "sim",
        [
          Alcotest.test_case "rejects bad config" `Quick test_sim_rejects_bad_config;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "delivers both classes" `Quick
            test_sim_delivers_both_classes;
          Alcotest.test_case "single hop count" `Quick test_sim_single_hop_count;
          Alcotest.test_case "pair delay accessor" `Quick
            test_sim_pair_delay_accessor;
          Alcotest.test_case "delay at least propagation" `Quick
            test_sim_delay_at_least_propagation;
          Alcotest.test_case "finite buffers drop" `Slow
            test_sim_finite_buffers_drop;
        ] );
      ( "mm1-validation",
        [
          Alcotest.test_case "high-priority delay" `Slow
            test_mm1_high_priority_delay;
          Alcotest.test_case "low-priority delay" `Slow
            test_mm1_low_priority_delay;
          Alcotest.test_case "utilization" `Slow test_mm1_utilization;
          Alcotest.test_case "priority gap" `Slow test_mm1_priority_gap;
          Alcotest.test_case "FIFO removes differentiation" `Slow
            test_fifo_no_differentiation;
        ] );
      ( "flow-level-agreement",
        [
          Alcotest.test_case "utilization matches model" `Slow
            test_sim_matches_flow_level_utilization;
          Alcotest.test_case "ECMP splits evenly" `Slow
            test_sim_ecmp_splits_evenly;
        ] );
    ]
