(* Tests for Dtr_cost: the Fortz-Thorup piecewise cost (exact values on
   every segment, convexity properties), the SLA penalty, and the
   lexicographic order laws. *)

module Fortz = Dtr_cost.Fortz
module Sla = Dtr_cost.Sla
module Lexico = Dtr_cost.Lexico

let checkf = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Fortz: exact values from Eq. (1) at interior points of each segment. *)

let test_phi_zero () = checkf "phi(0)" 0. (Fortz.phi ~load:0. ~capacity:10.)

let test_phi_segment1 () =
  (* u = 0.2: phi = load *)
  checkf "segment 1" 2. (Fortz.phi ~load:2. ~capacity:10.)

let test_phi_segment2 () =
  (* u = 0.5: phi = 3*load - 2/3*C = 15 - 20/3 *)
  checkf "segment 2" (15. -. (20. /. 3.)) (Fortz.phi ~load:5. ~capacity:10.)

let test_phi_segment3 () =
  (* u = 0.8: phi = 10*load - 16/3*C = 80 - 160/3 *)
  checkf "segment 3" (80. -. (160. /. 3.)) (Fortz.phi ~load:8. ~capacity:10.)

let test_phi_segment4 () =
  (* u = 0.95: phi = 70*load - 178/3*C *)
  checkf "segment 4"
    ((70. *. 9.5) -. (1780. /. 3.))
    (Fortz.phi ~load:9.5 ~capacity:10.)

let test_phi_segment5 () =
  (* u = 1.05: phi = 500*load - 1468/3*C *)
  checkf "segment 5"
    ((500. *. 10.5) -. (14680. /. 3.))
    (Fortz.phi ~load:10.5 ~capacity:10.)

let test_phi_segment6 () =
  (* u = 1.5: phi = 5000*load - 16318/3*C *)
  checkf "segment 6"
    ((5000. *. 15.) -. (163180. /. 3.))
    (Fortz.phi ~load:15. ~capacity:10.)

let test_phi_breakpoint_continuity () =
  (* The max-of-affine form is automatically continuous; check the
     known breakpoints anyway. *)
  List.iter
    (fun u ->
      let c = 10. in
      let below = Fortz.phi ~load:((u -. 1e-9) *. c) ~capacity:c in
      let above = Fortz.phi ~load:((u +. 1e-9) *. c) ~capacity:c in
      Alcotest.(check bool)
        (Printf.sprintf "continuous at %g" u)
        true
        (Float.abs (above -. below) < 1e-4))
    [ 1. /. 3.; 2. /. 3.; 0.9; 1.0; 1.1 ]

let test_phi_zero_capacity () =
  (* Saturated residual capacity: steepest segment applies. *)
  checkf "5000x at C=0" 5000. (Fortz.phi ~load:1. ~capacity:0.)

let test_phi_rejects_negative () =
  Alcotest.check_raises "negative load"
    (Invalid_argument "Fortz.phi: negative load") (fun () ->
      ignore (Fortz.phi ~load:(-1.) ~capacity:1.));
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Fortz.phi: negative capacity") (fun () ->
      ignore (Fortz.phi ~load:1. ~capacity:(-1.)))

let test_phi_segment_lookup () =
  Alcotest.(check int) "u=0.1" 0 (Fortz.segment ~utilization:0.1);
  Alcotest.(check int) "u=0.5" 1 (Fortz.segment ~utilization:0.5);
  Alcotest.(check int) "u=0.8" 2 (Fortz.segment ~utilization:0.8);
  Alcotest.(check int) "u=0.95" 3 (Fortz.segment ~utilization:0.95);
  Alcotest.(check int) "u=1.05" 4 (Fortz.segment ~utilization:1.05);
  Alcotest.(check int) "u=2" 5 (Fortz.segment ~utilization:2.)

let test_phi_uncapacitated () =
  checkf "matches phi" (Fortz.phi ~load:0.5 ~capacity:1.)
    (Fortz.phi_uncapacitated 0.5)

let prop_phi_monotone_in_load =
  QCheck.Test.make ~name:"phi is non-decreasing in load" ~count:500
    QCheck.(triple (float_range 0. 20.) (float_range 0. 5.) (float_range 0.1 10.))
    (fun (load, delta, capacity) ->
      Fortz.phi ~load:(load +. delta) ~capacity >= Fortz.phi ~load ~capacity)

let prop_phi_monotone_in_capacity =
  QCheck.Test.make ~name:"phi is non-increasing in capacity" ~count:500
    QCheck.(triple (float_range 0. 20.) (float_range 0.1 10.) (float_range 0. 5.))
    (fun (load, capacity, delta) ->
      Fortz.phi ~load ~capacity:(capacity +. delta)
      <= Fortz.phi ~load ~capacity +. 1e-9)

let prop_phi_saturated_finite_monotone =
  (* The saturated-residual case the search feeds in: C = 0 exactly.
     Must stay finite (never NaN) and non-decreasing in load. *)
  QCheck.Test.make ~name:"phi at zero capacity is finite and monotone"
    ~count:500
    QCheck.(pair (float_range 0. 1e6) (float_range 0. 1e6))
    (fun (load, delta) ->
      let a = Fortz.phi ~load ~capacity:0. in
      let b = Fortz.phi ~load:(load +. delta) ~capacity:0. in
      Float.is_finite a && Float.is_finite b && b >= a)

let prop_phi_convex_in_load =
  QCheck.Test.make ~name:"phi is convex in load (midpoint rule)" ~count:500
    QCheck.(triple (float_range 0. 20.) (float_range 0. 20.) (float_range 0.1 10.))
    (fun (x, y, c) ->
      let mid = Fortz.phi ~load:((x +. y) /. 2.) ~capacity:c in
      let avg = (Fortz.phi ~load:x ~capacity:c +. Fortz.phi ~load:y ~capacity:c) /. 2. in
      mid <= avg +. 1e-6)

let prop_phi_scale_invariant =
  QCheck.Test.make ~name:"phi(k*x, k*C) = k * phi(x, C)" ~count:500
    QCheck.(triple (float_range 0. 5.) (float_range 0.1 5.) (float_range 0.1 10.))
    (fun (load, capacity, k) ->
      let a = Fortz.phi ~load:(k *. load) ~capacity:(k *. capacity) in
      let b = k *. Fortz.phi ~load ~capacity in
      Float.abs (a -. b) <= 1e-6 *. Float.max 1. (Float.abs b))

(* ------------------------------------------------------------------ *)
(* Sla *)

let test_sla_penalty_zero_within_bound () =
  let p = Sla.default in
  checkf "within" 0. (Sla.penalty p ~delay:25.);
  checkf "below" 0. (Sla.penalty p ~delay:1.)

let test_sla_penalty_formula () =
  let p = Sla.default in
  (* a + b * excess = 100 + 1 * 5 *)
  checkf "violation" 105. (Sla.penalty p ~delay:30.)

let test_sla_violated () =
  let p = Sla.default in
  Alcotest.(check bool) "at bound" false (Sla.violated p ~delay:25.);
  Alcotest.(check bool) "above" true (Sla.violated p ~delay:25.0001)

let test_sla_link_delay_idle () =
  (* Idle 500 Mbps link, 8000-bit packets: transmission = 0.016 ms. *)
  let p = Sla.default in
  let d = Sla.link_delay p ~capacity:500. ~phi_h:0. ~prop_delay:10. in
  checkf "idle link" (10. +. 0.016) d

let test_sla_link_delay_grows_with_phi () =
  let p = Sla.default in
  let d0 = Sla.link_delay p ~capacity:500. ~phi_h:0. ~prop_delay:10. in
  let d1 = Sla.link_delay p ~capacity:500. ~phi_h:1000. ~prop_delay:10. in
  Alcotest.(check bool) "queueing grows" true (d1 > d0)

let test_sla_link_delay_rejects () =
  Alcotest.check_raises "capacity"
    (Invalid_argument "Sla.link_delay: non-positive capacity") (fun () ->
      ignore (Sla.link_delay Sla.default ~capacity:0. ~phi_h:0. ~prop_delay:0.))

let test_sla_relaxed_bound () =
  let p = Sla.with_relaxed_bound Sla.default ~epsilon:0.2 in
  checkf "25 * 1.2" 30. p.Sla.theta;
  Alcotest.check_raises "negative epsilon"
    (Invalid_argument "Sla.with_relaxed_bound: negative epsilon") (fun () ->
      ignore (Sla.with_relaxed_bound Sla.default ~epsilon:(-0.1)))

let prop_sla_penalty_monotone =
  QCheck.Test.make ~name:"penalty is non-decreasing in delay" ~count:300
    QCheck.(pair (float_range 0. 100.) (float_range 0. 20.))
    (fun (delay, delta) ->
      Sla.penalty Sla.default ~delay:(delay +. delta)
      >= Sla.penalty Sla.default ~delay)

(* ------------------------------------------------------------------ *)
(* Lexico *)

let mk p s = Lexico.make ~primary:p ~secondary:s

let test_lexico_ordering () =
  Alcotest.(check bool) "primary dominates" true (Lexico.lt (mk 1. 100.) (mk 2. 0.));
  Alcotest.(check bool) "secondary breaks ties" true (Lexico.lt (mk 1. 1.) (mk 1. 2.));
  Alcotest.(check bool) "equal not lt" false (Lexico.lt (mk 1. 1.) (mk 1. 1.))

let test_lexico_compare_contract () =
  Alcotest.(check int) "eq" 0 (Lexico.compare (mk 1. 2.) (mk 1. 2.));
  Alcotest.(check bool) "antisym" true
    (Lexico.compare (mk 1. 2.) (mk 2. 0.) < 0
    && Lexico.compare (mk 2. 0.) (mk 1. 2.) > 0)

let test_lexico_rel_tol () =
  (* Primaries within the tolerance: secondary decides. *)
  let a = mk 1000.0000001 1. and b = mk 1000. 2. in
  Alcotest.(check bool) "tolerant compare" true (Lexico.lt ~rel_tol:1e-6 a b);
  (* Without tolerance, the primary difference decides the other way. *)
  Alcotest.(check bool) "exact compare" true (Lexico.lt b a)

let test_lexico_min () =
  let a = mk 1. 5. and b = mk 1. 3. in
  Alcotest.(check (float 0.)) "min picks smaller secondary" 3.
    (Lexico.min a b).Lexico.secondary;
  (* Ties return the first argument. *)
  let t1 = mk 1. 1. and t2 = mk 1. 1. in
  Alcotest.(check bool) "tie returns first" true (Lexico.min t1 t2 == t1)

let test_lexico_add_zero () =
  let a = mk 3. 4. in
  let z = Lexico.add a Lexico.zero in
  checkf "primary" 3. z.Lexico.primary;
  checkf "secondary" 4. z.Lexico.secondary

let test_lexico_infinity_identity () =
  let a = mk 3. 4. in
  Alcotest.(check bool) "min with infinity" true (Lexico.min a Lexico.infinity == a)

let test_lexico_to_joint () =
  checkf "alpha blend" 35. (Lexico.to_joint ~alpha:10. (mk 3. 5.));
  Alcotest.check_raises "negative alpha"
    (Invalid_argument "Lexico.to_joint: negative alpha") (fun () ->
      ignore (Lexico.to_joint ~alpha:(-1.) (mk 1. 1.)))

let prop_lexico_total_order =
  QCheck.Test.make ~name:"lexicographic compare is transitive" ~count:300
    QCheck.(
      triple
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun ((p1, s1), (p2, s2), (p3, s3)) ->
      let a = mk p1 s1 and b = mk p2 s2 and c = mk p3 s3 in
      if Lexico.compare a b <= 0 && Lexico.compare b c <= 0 then
        Lexico.compare a c <= 0
      else true)

let prop_lexico_add_monotone =
  QCheck.Test.make ~name:"adding a common term preserves order" ~count:300
    QCheck.(
      triple
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.))
        (pair (float_range 0. 10.) (float_range 0. 10.)))
    (fun ((p1, s1), (p2, s2), (pc, sc)) ->
      let a = mk p1 s1 and b = mk p2 s2 and c = mk pc sc in
      if Lexico.lt a b then
        Lexico.compare (Lexico.add a c) (Lexico.add b c) <= 0
      else true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dtr_cost"
    [
      ( "fortz",
        [
          Alcotest.test_case "phi(0) = 0" `Quick test_phi_zero;
          Alcotest.test_case "segment 1" `Quick test_phi_segment1;
          Alcotest.test_case "segment 2" `Quick test_phi_segment2;
          Alcotest.test_case "segment 3" `Quick test_phi_segment3;
          Alcotest.test_case "segment 4" `Quick test_phi_segment4;
          Alcotest.test_case "segment 5" `Quick test_phi_segment5;
          Alcotest.test_case "segment 6" `Quick test_phi_segment6;
          Alcotest.test_case "breakpoint continuity" `Quick
            test_phi_breakpoint_continuity;
          Alcotest.test_case "zero capacity" `Quick test_phi_zero_capacity;
          Alcotest.test_case "rejects negative" `Quick test_phi_rejects_negative;
          Alcotest.test_case "segment lookup" `Quick test_phi_segment_lookup;
          Alcotest.test_case "uncapacitated" `Quick test_phi_uncapacitated;
          qc prop_phi_monotone_in_load;
          qc prop_phi_monotone_in_capacity;
          qc prop_phi_saturated_finite_monotone;
          qc prop_phi_convex_in_load;
          qc prop_phi_scale_invariant;
        ] );
      ( "sla",
        [
          Alcotest.test_case "no penalty within bound" `Quick
            test_sla_penalty_zero_within_bound;
          Alcotest.test_case "penalty formula" `Quick test_sla_penalty_formula;
          Alcotest.test_case "violated" `Quick test_sla_violated;
          Alcotest.test_case "idle link delay" `Quick test_sla_link_delay_idle;
          Alcotest.test_case "delay grows with phi" `Quick
            test_sla_link_delay_grows_with_phi;
          Alcotest.test_case "rejects bad capacity" `Quick
            test_sla_link_delay_rejects;
          Alcotest.test_case "relaxed bound" `Quick test_sla_relaxed_bound;
          qc prop_sla_penalty_monotone;
        ] );
      ( "lexico",
        [
          Alcotest.test_case "ordering" `Quick test_lexico_ordering;
          Alcotest.test_case "compare contract" `Quick
            test_lexico_compare_contract;
          Alcotest.test_case "relative tolerance" `Quick test_lexico_rel_tol;
          Alcotest.test_case "min" `Quick test_lexico_min;
          Alcotest.test_case "add zero" `Quick test_lexico_add_zero;
          Alcotest.test_case "infinity identity" `Quick
            test_lexico_infinity_identity;
          Alcotest.test_case "to_joint" `Quick test_lexico_to_joint;
          qc prop_lexico_total_order;
          qc prop_lexico_add_monotone;
        ] );
    ]
