(* Provenance stamp shared by every BENCH_*.json artifact: which
   source revision, toolchain, machine shape and seed produced the
   numbers, so a checked-in benchmark file is comparable (or known
   incomparable) with a rerun.  peak_rss_kb is sampled at stamp time —
   the harness stamps after the measured work, capturing its
   high-water mark. *)

let json ~seed =
  Printf.sprintf
    "{ \"git_rev\": %S, \"ocaml\": %S, \"cores\": %d, \"seed\": %d, \
     \"peak_rss_kb\": %d }"
    (Dtr_core.Manifest.git_rev ())
    Sys.ocaml_version
    (Domain.recommended_domain_count ())
    seed
    (Dtr_util.Metrics.peak_rss_kb ())
