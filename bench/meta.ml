(* Provenance stamp shared by every BENCH_*.json artifact: which
   source revision, toolchain, machine shape and seed produced the
   numbers, so a checked-in benchmark file is comparable (or known
   incomparable) with a rerun. *)

let json ~seed =
  Printf.sprintf
    "{ \"git_rev\": %S, \"ocaml\": %S, \"cores\": %d, \"seed\": %d }"
    (Dtr_core.Manifest.git_rev ())
    Sys.ocaml_version
    (Domain.recommended_domain_count ())
    seed
