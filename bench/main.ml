(* Benchmark harness.

   Two sections:

   1. Experiment regeneration — one entry per table/figure of the
      paper's evaluation section (via Dtr_experiments.Registry): each
      run prints the same rows/series the paper reports, plus wall
      time.  This is the artifact-style reproduction harness.

   2. Bechamel micro-benchmarks — the core operations whose cost
      dominates the heuristic search (Dijkstra, SPF DAG construction,
      two-class evaluation, FindH/FindL passes, a packet-level
      simulation slice, MT-OSPF flooding).

   The micro section also runs the delta-vs-full pair: the median cost
   of re-evaluating a single weight change from scratch vs through the
   incremental engine (Problem.eval_delta) on the 50-node benchmark
   topology; [--json] writes the pair and the speedup to
   BENCH_eval.json.  It then times the scan engine's single-arc value
   scan at 1 domain vs 4 plus the memo hit rate of a short STR run
   ([--json] -> BENCH_scan.json), and the 4-restart DTR multi-start at
   1 domain vs 4 (with a bit-identity check of the winners); [--json]
   writes that to BENCH_parallel.json.

   Usage:
     dune exec bench/main.exe                 # both sections, quick preset
     dune exec bench/main.exe -- --micro      # micro-benchmarks only
     dune exec bench/main.exe -- --experiments  # experiments only
     dune exec bench/main.exe -- --large        # 1k-10k-node tier only
     dune exec bench/main.exe -- --report --json # report/attribution only
     dune exec bench/main.exe -- --micro --json # also write BENCH_eval.json
     dune exec bench/main.exe -- --large --json # also write BENCH_large.json
     dune exec bench/main.exe -- --only fig2a --only fig9
     dune exec bench/main.exe -- --preset default --seed 7 *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Problem = Dtr_core.Problem
module Search_config = Dtr_core.Search_config
module Registry = Dtr_experiments.Registry
module Scenario = Dtr_experiments.Scenario

(* ------------------------------------------------------------------ *)
(* Command line *)

type mode = Both | Micro_only | Experiments_only | Large_only | Report_only

let mode = ref Both

let preset = ref Search_config.quick

let preset_name = ref "quick"

let seed = ref 1

let only : string list ref = ref []

let json = ref false

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--micro" :: rest ->
        mode := Micro_only;
        go rest
    | "--json" :: rest ->
        json := true;
        go rest
    | "--experiments" :: rest ->
        mode := Experiments_only;
        go rest
    | "--large" :: rest ->
        mode := Large_only;
        go rest
    | "--report" :: rest ->
        mode := Report_only;
        go rest
    | "--preset" :: p :: rest ->
        (preset :=
           match p with
           | "quick" -> Search_config.quick
           | "default" -> Search_config.default
           | "paper" -> Search_config.paper
           | _ -> failwith ("unknown preset: " ^ p));
        preset_name := p;
        go rest
    | "--seed" :: s :: rest ->
        seed := int_of_string s;
        go rest
    | "--only" :: name :: rest ->
        only := name :: !only;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Section 1: experiment regeneration *)

let run_experiments () =
  let selected =
    match !only with
    | [] -> Registry.all
    | names -> List.filter (fun e -> List.mem e.Registry.name names) Registry.all
  in
  Printf.printf
    "=== Experiment regeneration (preset=%s, seed=%d, %d experiments) ===\n\n%!"
    !preset_name !seed (List.length selected);
  let t_all = Unix.gettimeofday () in
  List.iter
    (fun e ->
      Printf.printf "--- %s: %s ---\n%!" e.Registry.name e.Registry.description;
      let t0 = Unix.gettimeofday () in
      let tables = e.Registry.run ~cfg:!preset ~seed:!seed in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter (fun t -> print_endline (Dtr_util.Table.to_string t)) tables;
      Printf.printf "(%s took %.1f s)\n\n%!" e.Registry.name dt)
    selected;
  Printf.printf "=== all experiments done in %.1f s ===\n\n%!"
    (Unix.gettimeofday () -. t_all)

(* ------------------------------------------------------------------ *)
(* Section 2: Bechamel micro-benchmarks *)

let micro_tests () =
  let open Bechamel in
  (* Shared fixtures: the paper's random topology scenario at 0.6
     utilization. *)
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Random_topo;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = !seed;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let g = inst.Scenario.graph in
  let w = Weights.uniform g 15 in
  let wl = Weights.uniform g 14 in
  let problem_load = Scenario.problem inst ~model:Objective.Load in
  let problem_sla =
    Scenario.problem inst ~model:(Objective.Sla Dtr_cost.Sla.default)
  in
  let sol_load = Problem.eval_dtr problem_load ~wh:w ~wl in
  let sol_sla = Problem.eval_dtr problem_sla ~wh:w ~wl in
  let cfg = !preset in
  let isp = Dtr_topology.Isp.generate () in
  let isp_w = Weights.uniform isp 10 in
  let netsim_cfg =
    {
      Dtr_netsim.Sim.default_config with
      Dtr_netsim.Sim.duration = 200.;
      warmup = 20.;
      mean_packet_bits = 8000.;
      seed = !seed;
    }
  in
  let th_small = Matrix.create 16 and tl_small = Matrix.create 16 in
  Matrix.set th_small 0 15 20.;
  Matrix.set tl_small 3 12 40.;
  [
    Test.make ~name:"dijkstra-30n-300a"
      (Staged.stage (fun () -> ignore (Dijkstra.distances_to g ~weights:w ~dst:0)));
    Test.make ~name:"spf-all-destinations"
      (Staged.stage (fun () -> ignore (Spf.all_destinations g ~weights:w)));
    Test.make ~name:"evaluate-str-load"
      (Staged.stage (fun () -> ignore (Problem.eval_str problem_load ~w)));
    Test.make ~name:"evaluate-dtr-load"
      (Staged.stage (fun () -> ignore (Problem.eval_dtr problem_load ~wh:w ~wl)));
    Test.make ~name:"evaluate-dtr-sla"
      (Staged.stage (fun () -> ignore (Problem.eval_dtr problem_sla ~wh:w ~wl)));
    (let rng = Prng.create 42 in
     Test.make ~name:"find-h-pass-load"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_h rng cfg problem_load sol_load))));
    (let rng = Prng.create 43 in
     Test.make ~name:"find-l-pass-load"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_l rng cfg problem_load sol_load))));
    (let rng = Prng.create 44 in
     Test.make ~name:"find-h-pass-sla"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_h rng cfg problem_sla sol_sla))));
    Test.make ~name:"netsim-isp-200ms"
      (Staged.stage (fun () ->
           ignore
             (Dtr_netsim.Sim.run isp ~wh:isp_w ~wl:isp_w ~th:th_small
                ~tl:tl_small netsim_cfg)));
    Test.make ~name:"mtospf-flood-isp"
      (Staged.stage (fun () ->
           let net = Dtr_mtospf.Network.create isp ~weight_sets:[| isp_w; isp_w |] in
           ignore (Dtr_mtospf.Network.flood net)));
    Test.make ~name:"fortz-phi"
      (Staged.stage (fun () -> ignore (Dtr_cost.Fortz.phi ~load:420. ~capacity:500.)));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "=== Bechamel micro-benchmarks ===";
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let tests = Test.make_grouped ~name:"dtr" ~fmt:"%s/%s" (micro_tests ()) in
  let results = benchmark tests in
  let analysis = analyze results in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) analysis [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-36s %14.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Delta-vs-full single-change re-evaluation (the incremental engine's
   headline number).  Measured by hand rather than through bechamel so
   the JSON artifact carries plain medians. *)

let median a =
  let s = Array.copy a in
  Array.sort Float.compare s;
  s.(Array.length s / 2)

let time_per_call f ~batch =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to batch do
    f ()
  done;
  (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int batch

let run_eval_bench () =
  (* Measured on a quiet heap: the bechamel section leaves a large
     major heap behind, which triples the minor-allocation cost the
     probes are dominated by. *)
  Gc.compact ();
  (* 50-node random topology, built with the Scenario seed discipline. *)
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let w = Weights.uniform g 15 in
  let sol = Problem.eval_str problem ~w in
  let m = Graph.arc_count g in
  (* Both sides replay the same rotating single-weight change. *)
  let next_change counter =
    let arc = !counter mod m in
    incr counter;
    let v = if w.(arc) >= Weights.max_weight then w.(arc) - 1 else w.(arc) + 1 in
    (arc, v)
  in
  let full_counter = ref 0 in
  let full_once () =
    let arc, v = next_change full_counter in
    let w' = Array.copy w in
    w'.(arc) <- v;
    ignore (Problem.eval_str problem ~w:w')
  in
  let ctx = Problem.ctx_of_solution problem sol in
  let delta_counter = ref 0 in
  let delta_once () =
    let arc, v = next_change delta_counter in
    let d = Problem.eval_delta problem ctx ~cls:`H ~changes:[ (arc, v) ] in
    Problem.abort_delta ctx d
  in
  for _ = 1 to 3 do
    full_once ()
  done;
  for _ = 1 to 50 do
    delta_once ()
  done;
  let reps = 9 in
  let full_ns = Array.init reps (fun _ -> time_per_call full_once ~batch:10) in
  let delta_ns = Array.init reps (fun _ -> time_per_call delta_once ~batch:100) in
  let full_med = median full_ns and delta_med = median delta_ns in
  let speedup = full_med /. delta_med in
  Printf.printf
    "=== delta-vs-full: single-weight-change re-evaluation (%d nodes, %d arcs) \
     ===\n"
    n m;
  Printf.printf "%-36s %14.1f ns/eval (median of %d)\n" "eval-1change-full"
    full_med reps;
  Printf.printf "%-36s %14.1f ns/eval (median of %d)\n" "eval-1change-delta"
    delta_med reps;
  Printf.printf "%-36s %14.1fx\n\n%!" "speedup" speedup;
  if !json then begin
    let oc = open_out "BENCH_eval.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"eval-1change\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"full_ns_per_eval_median\": %.1f,\n\
      \  \"delta_ns_per_eval_median\": %.1f,\n\
      \  \"speedup_median\": %.2f\n\
       }\n"
      (Meta.json ~seed:!seed) n m !seed reps full_med delta_med speedup;
    close_out oc;
    Printf.printf "wrote BENCH_eval.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Failure sweep: a full single-link failure sweep on the 50-node ISP
   scenario through the delta engine (arc-suppression probes against a
   live context) vs the from-scratch oracle (reduced graph + remapped
   weights per link).  The two must agree bitwise, outcome for
   outcome; the bench reports median wall times and the speedup. *)

let run_failure_bench () =
  Gc.compact ();
  let module Failure_sweep = Dtr_routing.Failure_sweep in
  let module Eval_ctx = Dtr_routing.Eval_ctx in
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let weight_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let wh = Weights.random weight_rng g in
  let wl = Weights.random weight_rng g in
  let ctx = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices:[| th; tl |] in
  let links = Graph.undirected_link_pairs g in
  let delta = Failure_sweep.sweep ~th ctx in
  let oracle = Failure_sweep.oracle_sweep g ~wh ~wl ~th ~tl in
  let identical =
    Array.length delta = Array.length oracle
    && Array.for_all2
         (fun (a : Failure_sweep.outcome) (b : Failure_sweep.outcome) ->
           Dtr_cost.Lexico.compare a.Failure_sweep.cost b.Failure_sweep.cost = 0
           && a.Failure_sweep.unreachable_pairs
              = b.Failure_sweep.unreachable_pairs)
         delta oracle
  in
  let delta_once () = ignore (Failure_sweep.sweep ~th ctx) in
  let oracle_once () = ignore (Failure_sweep.oracle_sweep g ~wh ~wl ~th ~tl) in
  let reps = 5 in
  let delta_ns = Array.init reps (fun _ -> time_per_call delta_once ~batch:1) in
  let oracle_ns = Array.init reps (fun _ -> time_per_call oracle_once ~batch:1) in
  let delta_med = median delta_ns and oracle_med = median oracle_ns in
  let speedup = oracle_med /. delta_med in
  let infinite = Failure_sweep.infinite_count delta in
  Printf.printf
    "=== failure sweep: %d-link single-failure sweep, delta vs from-scratch \
     (%d nodes, %d arcs) ===\n"
    (Array.length links) n (Graph.arc_count g);
  Printf.printf "%-36s %14.2f ms/sweep (median of %d)\n" "failure-sweep-delta"
    (delta_med /. 1e6) reps;
  Printf.printf "%-36s %14.2f ms/sweep (median of %d)\n" "failure-sweep-oracle"
    (oracle_med /. 1e6) reps;
  Printf.printf "%-36s %14.2fx\n" "speedup" speedup;
  Printf.printf "%-36s %14d\n" "infinite outcomes" infinite;
  Printf.printf "%-36s %14b\n\n%!" "bit-identical outcomes" identical;
  if not identical then failwith "failure sweep diverged from oracle";
  if !json then begin
    let oc = open_out "BENCH_failure.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"failure-sweep\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d, \"links\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"delta_sweep_ms_median\": %.2f,\n\
      \  \"oracle_sweep_ms_median\": %.2f,\n\
      \  \"speedup_median\": %.2f,\n\
      \  \"infinite_outcomes\": %d,\n\
      \  \"bit_identical\": %b\n\
       }\n"
      (Meta.json ~seed:!seed) n (Graph.arc_count g) (Array.length links) !seed
      reps (delta_med /. 1e6) (oracle_med /. 1e6) speedup infinite identical;
    close_out oc;
    Printf.printf "wrote BENCH_failure.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Scan engine: wall time of one full single-arc value scan (the STR
   hot loop) through Scan.evaluate at 1 domain vs N, a bit-identity
   check of the summaries, and the memo hit rate of a short STR run.
   On a single-core box the parallel speedup is honestly < 1; CI's
   multi-core runners show the scaling. *)

let run_scan_bench () =
  Gc.compact ();
  let module Scan = Dtr_core.Scan in
  let module Str_search = Dtr_core.Str_search in
  let jobs = 4 in
  let cores = Domain.recommended_domain_count () in
  (* Same 50-node random topology as the delta-vs-full bench. *)
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let w = Weights.uniform g 15 in
  let sol = Problem.eval_str problem ~w in
  let m = Graph.arc_count g in
  let n_vals = Weights.max_weight - Weights.min_weight in
  (* One scan = every alternative weight value of one arc (rotating),
     evaluated unmemoized so both sides do the full probe work. *)
  let scan_of engine ctx counter () =
    let arc = !counter mod m in
    incr counter;
    let vals = Array.make n_vals 0 in
    let pos = ref 0 in
    for v = Weights.min_weight to Weights.max_weight do
      if v <> w.(arc) then begin
        vals.(!pos) <- v;
        incr pos
      end
    done;
    Scan.evaluate engine ctx ~cls:`H
      ~changes_of:(fun i -> [ (arc, vals.(i)) ])
      n_vals
  in
  Scan.with_engine ~jobs:1 problem @@ fun seq_engine ->
  Scan.with_engine ~jobs problem @@ fun par_engine ->
  let seq_ctx = Problem.ctx_of_solution problem sol in
  let par_ctx = Problem.ctx_of_solution problem sol in
  let seq_counter = ref 0 and par_counter = ref 0 in
  let seq_scan = scan_of seq_engine seq_ctx seq_counter in
  let par_scan = scan_of par_engine par_ctx par_counter in
  (* Bit-identity of the summaries over one full rotation of arcs. *)
  let identical = ref true in
  for _ = 1 to m do
    let a = seq_scan () and b = par_scan () in
    if a <> b then identical := false
  done;
  let reps = 9 in
  let seq_ns =
    Array.init reps (fun _ -> time_per_call (fun () -> ignore (seq_scan ())) ~batch:20)
  in
  let par_ns =
    Array.init reps (fun _ -> time_per_call (fun () -> ignore (par_scan ())) ~batch:20)
  in
  let seq_med = median seq_ns and par_med = median par_ns in
  let speedup = seq_med /. par_med in
  (* Memo hit rate of a short STR run on the same problem: revisits of
     already-evaluated settings are served from the table. *)
  let report =
    Str_search.run ~iters:150 (Prng.create !seed) Search_config.quick problem
  in
  let hits = report.Str_search.memo_hits
  and misses = report.Str_search.memo_misses in
  let hit_rate = float_of_int hits /. float_of_int (max 1 (hits + misses)) in
  Printf.printf
    "=== scan engine: single-arc value scan (%d candidates), 1 domain vs %d \
     (%d cores available) ===\n"
    n_vals jobs cores;
  Printf.printf "%-36s %14.1f ns/scan (median of %d)\n" "scan-seq" seq_med reps;
  Printf.printf "%-36s %14.1f ns/scan (median of %d)\n"
    (Printf.sprintf "scan-par-jobs%d" jobs)
    par_med reps;
  Printf.printf "%-36s %14.2fx\n" "speedup" speedup;
  Printf.printf "%-36s %14b\n" "bit-identical summaries" !identical;
  Printf.printf "%-36s %8d hits / %d misses (%.1f%%)\n\n%!" "memo (150-iter STR)"
    hits misses (100. *. hit_rate);
  if not !identical then failwith "parallel scan summaries diverged";
  if !json then begin
    let oc = open_out "BENCH_scan.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"scan-engine\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"candidates_per_scan\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"available_cores\": %d,\n\
      \  \"scan_seq_ns_median\": %.1f,\n\
      \  \"scan_par_ns_median\": %.1f,\n\
      \  \"speedup\": %.2f,\n\
      \  \"bit_identical\": %b,\n\
      \  \"memo_hits\": %d,\n\
      \  \"memo_misses\": %d,\n\
      \  \"memo_hit_rate\": %.3f\n\
       }\n"
      (Meta.json ~seed:!seed) n m !seed n_vals reps jobs cores seq_med par_med
      speedup !identical hits misses hit_rate;
    close_out oc;
    Printf.printf "wrote BENCH_scan.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Parallel multi-start: wall time of the same 4-restart DTR search at
   1 domain vs N, plus a bit-identity check of the two winners.  On a
   single-core box the speedup is honestly < 1; CI's 4-core runners
   show the scaling. *)

let run_parallel_bench () =
  Gc.compact ();
  let module Multistart = Dtr_core.Multistart in
  let restarts = 4 in
  let jobs = 4 in
  let cores = Domain.recommended_domain_count () in
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Isp;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = !seed;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let problem = Scenario.problem inst ~model:Objective.Load in
  let run_ms ~jobs =
    let rng = Prng.create !seed in
    let t0 = Unix.gettimeofday () in
    let report =
      Multistart.run ~jobs ~restarts ~algo:Multistart.Dtr rng !preset problem
    in
    (report, Unix.gettimeofday () -. t0)
  in
  let seq, seq_s = run_ms ~jobs:1 in
  let par, par_s = run_ms ~jobs in
  let identical =
    Dtr_cost.Lexico.compare seq.Multistart.objective par.Multistart.objective
      = 0
    && seq.Multistart.best_index = par.Multistart.best_index
    && seq.Multistart.best.Problem.wh = par.Multistart.best.Problem.wh
    && seq.Multistart.best.Problem.wl = par.Multistart.best.Problem.wl
  in
  let speedup = seq_s /. par_s in
  Printf.printf
    "=== parallel multi-start: %d-restart DTR, 1 domain vs %d (%d cores \
     available) ===\n"
    restarts jobs cores;
  Printf.printf "%-36s %14.2f s\n" "multistart-dtr-jobs1" seq_s;
  Printf.printf "%-36s %14.2f s\n" (Printf.sprintf "multistart-dtr-jobs%d" jobs)
    par_s;
  Printf.printf "%-36s %14.2fx\n" "speedup" speedup;
  Printf.printf "%-36s %14b\n\n%!" "bit-identical winner" identical;
  if not identical then failwith "parallel multi-start result diverged";
  if !json then begin
    let oc = open_out "BENCH_parallel.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"multistart-dtr\",\n\
      \  \"manifest\": %s,\n\
      \  \"preset\": %S,\n\
      \  \"seed\": %d,\n\
      \  \"restarts\": %d,\n\
      \  \"jobs\": %d,\n\
      \  \"available_cores\": %d,\n\
      \  \"sequential_s\": %.3f,\n\
      \  \"parallel_s\": %.3f,\n\
      \  \"speedup\": %.2f,\n\
      \  \"bit_identical\": %b\n\
       }\n"
      (Meta.json ~seed:!seed) !preset_name !seed restarts jobs cores seq_s par_s
      speedup identical;
    close_out oc;
    Printf.printf "wrote BENCH_parallel.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Trace overhead + convergence curves: the same short STR run timed
   with tracing disabled, with a ring sink (probes off), and with
   probes on — the disabled configuration must cost no more than the
   pre-trace loop (its only addition is one pointer-compare branch per
   iteration), which the guard below enforces with generous noise
   margin.  A quick DTR run's best-so-far convergence curve is
   summarized into BENCH_trace.json alongside the timings. *)

let run_trace_bench () =
  Gc.compact ();
  let module Trace = Dtr_core.Trace in
  let module Str_search = Dtr_core.Str_search in
  let module Dtr_search = Dtr_core.Dtr_search in
  (* Same 50-node random topology as the delta-vs-full bench. *)
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let iters = 80 in
  let str_run ?trace cfg () =
    ignore (Str_search.run ~iters ?trace (Prng.create !seed) cfg problem)
  in
  let cfg_noprobe = { Search_config.quick with trace_probes = false } in
  let cfg_probe = Search_config.quick in
  (* Warm up once so allocation effects settle. *)
  str_run cfg_probe ();
  let reps = 7 in
  let sample f = median (Array.init reps (fun _ -> time_per_call f ~batch:1)) in
  let disabled_ns = sample (str_run cfg_probe) in
  let ring_events = ref 0 in
  let ring_ns =
    sample (fun () ->
        let ring = Trace.ring () in
        str_run ~trace:ring cfg_noprobe ();
        ring_events := Trace.length ring)
  in
  let probe_events = ref 0 in
  let probes_ns =
    sample (fun () ->
        let ring = Trace.ring () in
        str_run ~trace:ring cfg_probe ();
        probe_events := Trace.length ring)
  in
  let pct base x = (x -. base) /. base *. 100. in
  let ring_pct = pct disabled_ns ring_ns in
  let probes_pct = pct disabled_ns probes_ns in
  (* Convergence curve of one quick DTR run, recorded through a ring. *)
  let dtr_ring = Trace.ring () in
  let dtr_cfg = { cfg_noprobe with n_iters = 60; k_iters = 120 } in
  let dtr_report =
    Dtr_search.run ~trace:dtr_ring (Prng.create !seed) dtr_cfg problem
  in
  let curve = Trace.convergence (Trace.events dtr_ring) in
  Printf.printf
    "=== trace sink: %d-iter STR, disabled vs ring vs ring+probes (%d nodes, \
     %d arcs) ===\n"
    iters n (Graph.arc_count g);
  Printf.printf "%-36s %14.1f ns/run (median of %d)\n" "str-trace-disabled"
    disabled_ns reps;
  Printf.printf "%-36s %14.1f ns/run (%+.1f%%, %d events)\n" "str-trace-ring"
    ring_ns ring_pct !ring_events;
  Printf.printf "%-36s %14.1f ns/run (%+.1f%%, %d events)\n"
    "str-trace-ring-probes" probes_ns probes_pct !probe_events;
  Printf.printf "%-36s %14d points (DTR quick run, %d evals)\n\n%!"
    "convergence curve" (List.length curve) dtr_report.Dtr_search.evaluations;
  (* The disabled sink adds one branch per iteration; anything beyond
     measurement noise means a call site allocates while disabled. *)
  if ring_ns > 0. && disabled_ns > ring_ns *. 1.5 then
    failwith "disabled-trace run slower than enabled-trace run: guard broken";
  if !json then begin
    let oc = open_out "BENCH_trace.json" in
    let curve_json =
      String.concat ",\n"
        (List.map
           (fun (evals, obj) ->
             Printf.sprintf "    { \"evals\": %d, \"objective\": [%s] }" evals
               (String.concat ", "
                  (Array.to_list (Array.map (Printf.sprintf "%.17g") obj))))
           curve)
    in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"trace-sink\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"iters\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"disabled_ns_median\": %.1f,\n\
      \  \"ring_ns_median\": %.1f,\n\
      \  \"ring_probes_ns_median\": %.1f,\n\
      \  \"ring_overhead_pct\": %.2f,\n\
      \  \"ring_probes_overhead_pct\": %.2f,\n\
      \  \"ring_events\": %d,\n\
      \  \"ring_probes_events\": %d,\n\
      \  \"dtr_convergence\": [\n%s\n  ]\n\
       }\n"
      (Meta.json ~seed:!seed) n (Graph.arc_count g) !seed iters reps disabled_ns
      ring_ns probes_ns ring_pct probes_pct !ring_events !probe_events
      curve_json;
    close_out oc;
    Printf.printf "wrote BENCH_trace.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Metrics overhead: the same short STR run with the metrics registry
   off vs on.  Disabled instrumentation is one predicted branch per
   counter site (the same discipline as the disabled trace sink), so
   the disabled run must not be measurably slower than pre-metrics
   baselines — the guard fails the bench if it exceeds the enabled run
   by more than noise, which would mean a call site allocates or locks
   while disabled. *)

let run_metrics_bench () =
  Gc.compact ();
  let module Metrics = Dtr_util.Metrics in
  let module Str_search = Dtr_core.Str_search in
  (* Same 50-node random topology as the delta-vs-full bench. *)
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  let iters = 80 in
  let str_run () =
    ignore (Str_search.run ~iters (Prng.create !seed) Search_config.quick problem)
  in
  str_run ();
  let reps = 7 in
  let sample f = median (Array.init reps (fun _ -> time_per_call f ~batch:1)) in
  Metrics.set_enabled false;
  let disabled_ns = sample str_run in
  Metrics.set_enabled true;
  Metrics.reset ();
  let enabled_ns = sample str_run in
  (* One clean instrumented run for the artifact's counter snapshot. *)
  Metrics.reset ();
  str_run ();
  let value name =
    Metrics.counter_value (Metrics.counter ~help:"(bench lookup)" name)
  in
  let spf_runs = value "dtr_spf_runs_total" in
  let probes = value "dtr_eval_probes_total" in
  Metrics.set_enabled false;
  Metrics.reset ();
  let overhead_pct = (enabled_ns -. disabled_ns) /. disabled_ns *. 100. in
  Printf.printf
    "=== metrics registry: %d-iter STR, disabled vs enabled (%d nodes, %d \
     arcs) ===\n"
    iters n (Graph.arc_count g);
  Printf.printf "%-36s %14.1f ns/run (median of %d)\n" "str-metrics-disabled"
    disabled_ns reps;
  Printf.printf "%-36s %14.1f ns/run (%+.1f%%)\n" "str-metrics-enabled"
    enabled_ns overhead_pct;
  Printf.printf "%-36s %8d SPF runs, %d probes per run\n\n%!"
    "counters (1 run)" spf_runs probes;
  (* Disabled-cost guard, mirroring the trace bench's. *)
  if enabled_ns > 0. && disabled_ns > enabled_ns *. 1.5 then
    failwith "disabled-metrics run slower than enabled run: guard broken";
  if !json then begin
    let oc = open_out "BENCH_metrics.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"metrics-registry\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"iters\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"disabled_ns_median\": %.1f,\n\
      \  \"enabled_ns_median\": %.1f,\n\
      \  \"enabled_overhead_pct\": %.2f,\n\
      \  \"spf_runs_per_run\": %d,\n\
      \  \"probes_per_run\": %d\n\
       }\n"
      (Meta.json ~seed:!seed) n (Graph.arc_count g) !seed iters reps disabled_ns
      enabled_ns overhead_pct spf_runs probes;
    close_out oc;
    Printf.printf "wrote BENCH_metrics.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Report generation + attribution: time folding a real JSONL trace
   into the aggregated report (load / markdown / json), and the full
   per-arc flow attribution of a committed context.  Attribution only
   re-reads the contribution rows the context already stores, so
   attributing every arc must stay within a few context rebuilds —
   the guard fails the bench if it drifts past that, which would mean
   the explain path started recomputing flows. *)

let run_report_bench () =
  Gc.compact ();
  let module Trace = Dtr_core.Trace in
  let module Dtr_search = Dtr_core.Dtr_search in
  let module Report_gen = Dtr_core.Report_gen in
  let module Eval_ctx = Dtr_routing.Eval_ctx in
  let module Attribution = Dtr_routing.Attribution in
  (* Same 50-node random topology as the delta-vs-full bench. *)
  let root = Prng.create !seed in
  let topo_rng = Prng.split root in
  let traffic_rng = Prng.split root in
  let g =
    Dtr_topology.Random_topo.generate topo_rng
      { Dtr_topology.Random_topo.default with nodes = 50; links = 250 }
  in
  let n = Graph.node_count g in
  let tl = Dtr_traffic.Gravity.generate traffic_rng ~n Dtr_traffic.Gravity.default in
  let pairs = Dtr_traffic.Highpri.random_pairs traffic_rng ~n ~density:0.10 in
  let th = Dtr_traffic.Highpri.volumes traffic_rng ~low:tl ~fraction:0.30 ~pairs in
  let problem = Problem.create ~graph:g ~th ~tl ~model:Objective.Load in
  (* One probe-level trace of a quick DTR run, written as JSONL. *)
  let trace_path = Filename.temp_file "dtr_bench_trace" ".jsonl" in
  let oc = open_out trace_path in
  let sink = Trace.jsonl ~timestamps:false oc in
  let cfg = { Search_config.quick with n_iters = 60; k_iters = 120 } in
  ignore (Dtr_search.run ~trace:sink (Prng.create !seed) cfg problem);
  close_out oc;
  let reps = 7 in
  let sample f = median (Array.init reps (fun _ -> time_per_call f ~batch:1)) in
  let rep =
    match Report_gen.load trace_path with
    | Ok r -> r
    | Error e -> failwith ("report bench: " ^ e)
  in
  let events = List.length (Report_gen.events rep) in
  let load_ns =
    sample (fun () ->
        match Report_gen.load trace_path with
        | Ok r -> ignore (Sys.opaque_identity r)
        | Error e -> failwith e)
  in
  let markdown_ns =
    sample (fun () -> ignore (Sys.opaque_identity (Report_gen.to_markdown rep)))
  in
  let json_ns =
    sample (fun () -> ignore (Sys.opaque_identity (Report_gen.to_json rep)))
  in
  Sys.remove trace_path;
  (* Attribution: every arc of a committed two-class context. *)
  let wh = Weights.uniform g 15 and wl = Weights.uniform g 14 in
  let matrices = [| th; tl |] in
  let create () = Eval_ctx.create g ~weights:[| wh; wl |] ~matrices in
  let ctx = create () in
  let m = Graph.arc_count g in
  let create_ns = sample (fun () -> ignore (Sys.opaque_identity (create ()))) in
  let attr_ns =
    sample (fun () ->
        for k = 0 to Eval_ctx.class_count ctx - 1 do
          for arc = 0 to m - 1 do
            ignore (Sys.opaque_identity (Attribution.by_destination ctx ~klass:k ~arc))
          done
        done)
  in
  let hottest_ns =
    sample (fun () ->
        ignore (Sys.opaque_identity (Attribution.hottest_table ~top:10 ctx)))
  in
  Printf.printf
    "=== report generation + attribution (%d nodes, %d arcs, %d trace events) \
     ===\n"
    n m events;
  Printf.printf "%-36s %14.1f ns/call (median of %d)\n" "report-load" load_ns
    reps;
  Printf.printf "%-36s %14.1f ns/call\n" "report-markdown" markdown_ns;
  Printf.printf "%-36s %14.1f ns/call\n" "report-json" json_ns;
  Printf.printf "%-36s %14.1f ns/call\n" "eval-ctx-create" create_ns;
  Printf.printf "%-36s %14.1f ns/call (all %d arcs, both classes)\n"
    "attribution-by-destination" attr_ns m;
  Printf.printf "%-36s %14.1f ns/call\n\n%!" "attribution-hottest-table"
    hottest_ns;
  (* Attribution reads committed rows; recomputation would cost many
     context builds.  Generous factor for measurement noise. *)
  if create_ns > 0. && attr_ns > create_ns *. 5. then
    failwith "attribution slower than 5 context rebuilds: guard broken";
  if !json then begin
    let oc = open_out "BENCH_report.json" in
    Printf.fprintf oc
      "{\n\
      \  \"benchmark\": \"report-attribution\",\n\
      \  \"manifest\": %s,\n\
      \  \"topology\": { \"nodes\": %d, \"arcs\": %d },\n\
      \  \"seed\": %d,\n\
      \  \"reps\": %d,\n\
      \  \"trace_events\": %d,\n\
      \  \"report_load_ns_median\": %.1f,\n\
      \  \"report_markdown_ns_median\": %.1f,\n\
      \  \"report_json_ns_median\": %.1f,\n\
      \  \"eval_ctx_create_ns_median\": %.1f,\n\
      \  \"attribution_all_arcs_ns_median\": %.1f,\n\
      \  \"attribution_hottest_ns_median\": %.1f,\n\
      \  \"attribution_vs_create_ratio\": %.3f\n\
       }\n"
      (Meta.json ~seed:!seed) n m !seed reps events load_ns markdown_ns json_ns
      create_ns attr_ns hottest_ns
      (if create_ns > 0. then attr_ns /. create_ns else 0.);
    close_out oc;
    Printf.printf "wrote BENCH_report.json\n\n%!"
  end

(* ------------------------------------------------------------------ *)
(* Large-topology tier: the 1k-10k-node presets through demand-only
   evaluation contexts (Dtr_experiments.Large_bench); [--json] writes
   BENCH_large.json with one row per preset: full-eval time, probe
   latency percentiles, evals/sec and peak RSS. *)

let run_large_bench () =
  let module Large_bench = Dtr_experiments.Large_bench in
  print_endline "=== large-topology tier (1k-10k nodes, demand-only contexts) ===";
  let names = Dtr_topology.Large.names () in
  let rows =
    Large_bench.run ~progress:(Printf.printf "%s\n%!") ~seed:!seed names
  in
  print_endline (Dtr_util.Table.to_string (Large_bench.table rows));
  if !json then begin
    let oc = open_out "BENCH_large.json" in
    output_string oc
      (Large_bench.to_json ~seed:!seed ~probes:Large_bench.default_probes rows);
    close_out oc;
    Printf.printf "wrote BENCH_large.json\n\n%!"
  end

let () =
  parse_args ();
  (match !mode with
  | Both ->
      run_experiments ();
      run_eval_bench ();
      run_failure_bench ();
      run_scan_bench ();
      run_parallel_bench ();
      run_trace_bench ();
      run_metrics_bench ();
      run_report_bench ();
      run_micro ()
  | Micro_only ->
      run_eval_bench ();
      run_failure_bench ();
      run_scan_bench ();
      run_parallel_bench ();
      run_trace_bench ();
      run_metrics_bench ();
      run_report_bench ();
      run_micro ()
  | Experiments_only -> run_experiments ()
  | Large_only -> run_large_bench ()
  | Report_only -> run_report_bench ());
  print_endline "bench: done"
