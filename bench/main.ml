(* Benchmark harness.

   Two sections:

   1. Experiment regeneration — one entry per table/figure of the
      paper's evaluation section (via Dtr_experiments.Registry): each
      run prints the same rows/series the paper reports, plus wall
      time.  This is the artifact-style reproduction harness.

   2. Bechamel micro-benchmarks — the core operations whose cost
      dominates the heuristic search (Dijkstra, SPF DAG construction,
      two-class evaluation, FindH/FindL passes, a packet-level
      simulation slice, MT-OSPF flooding).

   Usage:
     dune exec bench/main.exe                 # both sections, quick preset
     dune exec bench/main.exe -- --micro      # micro-benchmarks only
     dune exec bench/main.exe -- --experiments  # experiments only
     dune exec bench/main.exe -- --only fig2a --only fig9
     dune exec bench/main.exe -- --preset default --seed 7 *)

module Prng = Dtr_util.Prng
module Graph = Dtr_graph.Graph
module Spf = Dtr_graph.Spf
module Dijkstra = Dtr_graph.Dijkstra
module Matrix = Dtr_traffic.Matrix
module Objective = Dtr_routing.Objective
module Weights = Dtr_routing.Weights
module Problem = Dtr_core.Problem
module Search_config = Dtr_core.Search_config
module Registry = Dtr_experiments.Registry
module Scenario = Dtr_experiments.Scenario

(* ------------------------------------------------------------------ *)
(* Command line *)

type mode = Both | Micro_only | Experiments_only

let mode = ref Both

let preset = ref Search_config.quick

let preset_name = ref "quick"

let seed = ref 1

let only : string list ref = ref []

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--micro" :: rest ->
        mode := Micro_only;
        go rest
    | "--experiments" :: rest ->
        mode := Experiments_only;
        go rest
    | "--preset" :: p :: rest ->
        (preset :=
           match p with
           | "quick" -> Search_config.quick
           | "default" -> Search_config.default
           | "paper" -> Search_config.paper
           | _ -> failwith ("unknown preset: " ^ p));
        preset_name := p;
        go rest
    | "--seed" :: s :: rest ->
        seed := int_of_string s;
        go rest
    | "--only" :: name :: rest ->
        only := name :: !only;
        go rest
    | arg :: _ -> failwith ("unknown argument: " ^ arg)
  in
  go (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Section 1: experiment regeneration *)

let run_experiments () =
  let selected =
    match !only with
    | [] -> Registry.all
    | names -> List.filter (fun e -> List.mem e.Registry.name names) Registry.all
  in
  Printf.printf
    "=== Experiment regeneration (preset=%s, seed=%d, %d experiments) ===\n\n%!"
    !preset_name !seed (List.length selected);
  let t_all = Unix.gettimeofday () in
  List.iter
    (fun e ->
      Printf.printf "--- %s: %s ---\n%!" e.Registry.name e.Registry.description;
      let t0 = Unix.gettimeofday () in
      let tables = e.Registry.run ~cfg:!preset ~seed:!seed in
      let dt = Unix.gettimeofday () -. t0 in
      List.iter (fun t -> print_endline (Dtr_util.Table.to_string t)) tables;
      Printf.printf "(%s took %.1f s)\n\n%!" e.Registry.name dt)
    selected;
  Printf.printf "=== all experiments done in %.1f s ===\n\n%!"
    (Unix.gettimeofday () -. t_all)

(* ------------------------------------------------------------------ *)
(* Section 2: Bechamel micro-benchmarks *)

let micro_tests () =
  let open Bechamel in
  (* Shared fixtures: the paper's random topology scenario at 0.6
     utilization. *)
  let inst =
    Scenario.make
      {
        Scenario.topology = Scenario.Random_topo;
        fraction = 0.30;
        hp = Scenario.Random_density 0.10;
        seed = !seed;
      }
  in
  let inst = Scenario.scale_to_utilization inst ~target:0.6 in
  let g = inst.Scenario.graph in
  let w = Weights.uniform g 15 in
  let wl = Weights.uniform g 14 in
  let problem_load = Scenario.problem inst ~model:Objective.Load in
  let problem_sla =
    Scenario.problem inst ~model:(Objective.Sla Dtr_cost.Sla.default)
  in
  let sol_load = Problem.eval_dtr problem_load ~wh:w ~wl in
  let sol_sla = Problem.eval_dtr problem_sla ~wh:w ~wl in
  let cfg = !preset in
  let isp = Dtr_topology.Isp.generate () in
  let isp_w = Weights.uniform isp 10 in
  let netsim_cfg =
    {
      Dtr_netsim.Sim.default_config with
      Dtr_netsim.Sim.duration = 200.;
      warmup = 20.;
      mean_packet_bits = 8000.;
      seed = !seed;
    }
  in
  let th_small = Matrix.create 16 and tl_small = Matrix.create 16 in
  Matrix.set th_small 0 15 20.;
  Matrix.set tl_small 3 12 40.;
  [
    Test.make ~name:"dijkstra-30n-300a"
      (Staged.stage (fun () -> ignore (Dijkstra.distances_to g ~weights:w ~dst:0)));
    Test.make ~name:"spf-all-destinations"
      (Staged.stage (fun () -> ignore (Spf.all_destinations g ~weights:w)));
    Test.make ~name:"evaluate-str-load"
      (Staged.stage (fun () -> ignore (Problem.eval_str problem_load ~w)));
    Test.make ~name:"evaluate-dtr-load"
      (Staged.stage (fun () -> ignore (Problem.eval_dtr problem_load ~wh:w ~wl)));
    Test.make ~name:"evaluate-dtr-sla"
      (Staged.stage (fun () -> ignore (Problem.eval_dtr problem_sla ~wh:w ~wl)));
    (let rng = Prng.create 42 in
     Test.make ~name:"find-h-pass-load"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_h rng cfg problem_load sol_load))));
    (let rng = Prng.create 43 in
     Test.make ~name:"find-l-pass-load"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_l rng cfg problem_load sol_load))));
    (let rng = Prng.create 44 in
     Test.make ~name:"find-h-pass-sla"
       (Staged.stage (fun () ->
            ignore (Dtr_core.Dtr_search.find_h rng cfg problem_sla sol_sla))));
    Test.make ~name:"netsim-isp-200ms"
      (Staged.stage (fun () ->
           ignore
             (Dtr_netsim.Sim.run isp ~wh:isp_w ~wl:isp_w ~th:th_small
                ~tl:tl_small netsim_cfg)));
    Test.make ~name:"mtospf-flood-isp"
      (Staged.stage (fun () ->
           let net = Dtr_mtospf.Network.create isp ~weight_sets:[| isp_w; isp_w |] in
           ignore (Dtr_mtospf.Network.flood net)));
    Test.make ~name:"fortz-phi"
      (Staged.stage (fun () -> ignore (Dtr_cost.Fortz.phi ~load:420. ~capacity:500.)));
  ]

let run_micro () =
  let open Bechamel in
  print_endline "=== Bechamel micro-benchmarks ===";
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) () in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  let tests = Test.make_grouped ~name:"dtr" ~fmt:"%s/%s" (micro_tests ()) in
  let results = benchmark tests in
  let analysis = analyze results in
  let rows = Hashtbl.fold (fun name result acc -> (name, result) :: acc) analysis [] in
  List.iter
    (fun (name, result) ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-36s %14.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

let () =
  parse_args ();
  (match !mode with
  | Both ->
      run_experiments ();
      run_micro ()
  | Micro_only -> run_micro ()
  | Experiments_only -> run_experiments ());
  print_endline "bench: done"
